//! Table 2: validating the BRACE traffic reimplementation against the
//! hand-coded baseline.
//!
//! "We validate consistency of the MITSIM model encoded in BRASIL in terms
//! of the simulated traffic conditions … We compare lane changing
//! frequencies, average lane velocity and average lane density … The
//! statistical difference is measured by RMSPE" (§5.2, Appendix C).
//!
//! Both engines are observed through the same [`TrafficObserver`]: per
//! aggregation window and lane it records vehicle density, mean velocity
//! and lane-change counts; [`compare`] then computes the RMSPE between the
//! two engines' per-window series for every lane and statistic.

use crate::mitsim::MitsimBaseline;
use crate::traffic::{state, TrafficParams};
use brace_common::stats::rmspe;
use brace_core::Agent;
use std::collections::HashMap;

/// Per-lane, per-window observation series.
#[derive(Debug, Clone, Default)]
struct LaneSeries {
    density: Vec<f64>,
    velocity: Vec<f64>,
    change_freq: Vec<f64>,
}

/// Streaming observer producing windowed per-lane statistics.
#[derive(Debug)]
pub struct TrafficObserver {
    lanes: usize,
    segment: f64,
    window: u64,
    tick_in_window: u64,
    // Window accumulators.
    count_sum: Vec<f64>,
    vel_sum: Vec<f64>,
    vel_n: Vec<u64>,
    changes: Vec<u64>,
    prev_lane: HashMap<u64, usize>,
    series: Vec<LaneSeries>,
}

impl TrafficObserver {
    /// Observe `lanes` lanes of a `segment`-length road, aggregating every
    /// `window` ticks.
    pub fn new(params: &TrafficParams, window: u64) -> Self {
        assert!(window > 0);
        TrafficObserver {
            lanes: params.lanes,
            segment: params.segment,
            window,
            tick_in_window: 0,
            count_sum: vec![0.0; params.lanes],
            vel_sum: vec![0.0; params.lanes],
            vel_n: vec![0; params.lanes],
            changes: vec![0; params.lanes],
            prev_lane: HashMap::new(),
            series: (0..params.lanes).map(|_| LaneSeries::default()).collect(),
        }
    }

    /// Record one tick of a BRACE population.
    pub fn observe_agents(&mut self, agents: &[Agent]) {
        let snapshot: Vec<(u64, usize, f64)> =
            agents.iter().map(|a| (a.id.raw(), a.pos.y.round() as usize, a.state[state::VEL as usize])).collect();
        self.observe(snapshot);
    }

    /// Record one tick of the baseline.
    pub fn observe_baseline(&mut self, sim: &MitsimBaseline) {
        let snapshot: Vec<(u64, usize, f64)> = sim
            .lanes()
            .iter()
            .enumerate()
            .flat_map(|(lane, cars)| cars.iter().map(move |c| (c.id, lane, c.vel)))
            .collect();
        self.observe(snapshot);
    }

    fn observe(&mut self, vehicles: Vec<(u64, usize, f64)>) {
        for &(id, lane, vel) in &vehicles {
            let lane = lane.min(self.lanes - 1);
            self.count_sum[lane] += 1.0;
            self.vel_sum[lane] += vel;
            self.vel_n[lane] += 1;
            if let Some(prev) = self.prev_lane.insert(id, lane) {
                if prev != lane {
                    // Attribute the change to the destination lane.
                    self.changes[lane] += 1;
                }
            }
        }
        // Forget vehicles that left the road (ids not seen get rebuilt on
        // respawn; stale entries are harmless but bounded).
        self.tick_in_window += 1;
        if self.tick_in_window == self.window {
            self.flush_window();
        }
    }

    fn flush_window(&mut self) {
        for lane in 0..self.lanes {
            let s = &mut self.series[lane];
            s.density.push(self.count_sum[lane] / self.window as f64 / self.segment);
            let v = if self.vel_n[lane] > 0 { self.vel_sum[lane] / self.vel_n[lane] as f64 } else { 0.0 };
            s.velocity.push(v);
            s.change_freq.push(self.changes[lane] as f64 / self.window as f64);
            self.count_sum[lane] = 0.0;
            self.vel_sum[lane] = 0.0;
            self.vel_n[lane] = 0;
            self.changes[lane] = 0;
        }
        self.tick_in_window = 0;
    }

    /// Completed windows so far.
    pub fn windows(&self) -> usize {
        self.series.first().map_or(0, |s| s.density.len())
    }

    /// Mean density of a lane over all windows (veh/m).
    pub fn mean_density(&self, lane: usize) -> f64 {
        mean(&self.series[lane].density)
    }

    /// Mean velocity of a lane over all windows (m/s).
    pub fn mean_velocity(&self, lane: usize) -> f64 {
        mean(&self.series[lane].velocity)
    }

    /// Mean lane-change frequency (events/tick into this lane).
    pub fn mean_change_freq(&self, lane: usize) -> f64 {
        mean(&self.series[lane].change_freq)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One row of Table 2: RMSPE between the two engines for one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    pub lane: usize,
    pub change_freq_rmspe: f64,
    pub density_rmspe: f64,
    pub velocity_rmspe: f64,
}

/// Compare an observed engine against the reference engine (the baseline in
/// the paper's setup), producing one row per lane.
pub fn compare(observed: &TrafficObserver, reference: &TrafficObserver) -> Vec<Table2Row> {
    assert_eq!(observed.lanes, reference.lanes, "lane counts must match");
    (0..observed.lanes)
        .map(|lane| {
            let o = &observed.series[lane];
            let r = &reference.series[lane];
            Table2Row {
                lane,
                change_freq_rmspe: rmspe(&o.change_freq, &r.change_freq).unwrap_or(f64::NAN),
                density_rmspe: rmspe(&o.density, &r.density).unwrap_or(f64::NAN),
                velocity_rmspe: rmspe(&o.velocity, &r.velocity).unwrap_or(f64::NAN),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficBehavior;
    use brace_core::Simulation;

    fn params() -> TrafficParams {
        TrafficParams { segment: 1000.0, lanes: 3, density: 0.03, ..TrafficParams::default() }
    }

    #[test]
    fn observer_windows_and_means() {
        let p = params();
        let b = TrafficBehavior::new(p.clone());
        let pop = b.population(1);
        let mut sim = Simulation::builder(b).agents(pop).seed(1).build().unwrap();
        let mut obs = TrafficObserver::new(&p, 5);
        for _ in 0..20 {
            obs.observe_agents(&sim.agents());
            sim.step();
        }
        assert_eq!(obs.windows(), 4);
        for lane in 0..3 {
            assert!(obs.mean_density(lane) > 0.0);
            assert!(obs.mean_velocity(lane) > 0.0);
        }
    }

    #[test]
    fn identical_engines_give_zero_rmspe() {
        let p = params();
        let run = || {
            let b = TrafficBehavior::new(p.clone());
            let pop = b.population(2);
            let mut sim = Simulation::builder(b).agents(pop).seed(2).build().unwrap();
            let mut obs = TrafficObserver::new(&p, 10);
            for _ in 0..50 {
                obs.observe_agents(&sim.agents());
                sim.step();
            }
            obs
        };
        let a = run();
        let b = run();
        for row in compare(&a, &b) {
            assert_eq!(row.density_rmspe, 0.0);
            assert_eq!(row.velocity_rmspe, 0.0);
            // change_freq can be NaN if a lane saw no changes (all-zero
            // reference series); zero otherwise.
            assert!(row.change_freq_rmspe == 0.0 || row.change_freq_rmspe.is_nan());
        }
    }

    #[test]
    fn engines_agree_within_tolerance() {
        // The Table 2 claim, in miniature: BRACE vs the hand-coded baseline
        // on the same road agree on density and velocity within a modest
        // relative error. (Full-scale numbers appear in EXPERIMENTS.md.)
        let p = params();
        let b = TrafficBehavior::new(p.clone());
        let pop = b.population(3);
        let mut brace_sim = Simulation::builder(b).agents(pop).seed(3).build().unwrap();
        let mut base = MitsimBaseline::new(p.clone(), 3);
        let mut obs_brace = TrafficObserver::new(&p, 25);
        let mut obs_base = TrafficObserver::new(&p, 25);
        // Warm-up both engines to steady state, then observe.
        brace_sim.run(50);
        base.run(50);
        for _ in 0..150 {
            obs_brace.observe_agents(&brace_sim.agents());
            obs_base.observe_baseline(&base);
            brace_sim.step();
            base.step();
        }
        let rows = compare(&obs_brace, &obs_base);
        for row in &rows {
            assert!(row.velocity_rmspe < 0.25, "lane {} velocity RMSPE {} too high", row.lane, row.velocity_rmspe);
            assert!(row.density_rmspe < 0.5, "lane {} density RMSPE {} too high", row.lane, row.density_rmspe);
        }
    }
}
