//! # brace-models — the paper's evaluation workloads
//!
//! Three real-world behavioral simulations, exactly the evaluation suite of
//! §5:
//!
//! * [`traffic`] — a MITSIM-style microscopic traffic model (lane selection
//!   with gap acceptance, car following, free-flow) as a BRACE
//!   [`Behavior`](brace_core::Behavior), plus [`mitsim`], a **hand-coded
//!   single-node baseline** with a per-lane nearest-neighbor index standing
//!   in for the closed-source MITSIM comparator of Figure 3 / Table 2.
//! * [`fish`] — the Couzin et al. information-transfer model: repulsion
//!   inside a personal zone, attraction/alignment inside the visible zone,
//!   informed individuals balancing a preferred direction. Local effects
//!   only. The two-informed-classes configuration drives the load-balancing
//!   experiments (Figures 7/8).
//! * [`predator`] — an artificial-society predator simulation with biting
//!   (the paper's example of a **non-local** effect assignment), in both
//!   non-local and hand-inverted local form, plus spawn/death population
//!   dynamics.
//! * [`scripts`] — the same models written in BRASIL (the fish school is
//!   the paper's Figure 2), compiled through the `brasil` crate; the
//!   predator script is the Figure 5 workload, inverted automatically by
//!   `brasil::invert_effects`.
//! * [`validation`] — the Table 2 machinery: per-lane traffic statistics
//!   and RMSPE comparison between the BRACE reimplementation and the
//!   baseline.
//!
//! Beyond the paper's suite, two scenario-registry workloads prove the
//! `Scenario`/`Runner` surface generalizes:
//!
//! * [`epidemic`] — an SIR epidemic on a plane with infection as a
//!   **non-local**, exactly-associative ⊕-effect (integer contact counts);
//! * [`flock_obstacles`] — zonal flocking through a deterministic field of
//!   static circular obstacles (environment as model data).

pub mod epidemic;
pub mod fish;
pub mod flock_obstacles;
pub mod mitsim;
pub mod predator;
pub mod scripts;
pub mod traffic;
pub mod validation;

pub use epidemic::{EpidemicBehavior, EpidemicParams};
pub use fish::{FishBehavior, FishParams};
pub use flock_obstacles::{FlockObstaclesBehavior, FlockObstaclesParams};
pub use mitsim::MitsimBaseline;
pub use predator::{PredatorBehavior, PredatorParams};
pub use traffic::{TrafficBehavior, TrafficParams};
