//! The hand-coded single-node baseline ("MITSIM").
//!
//! The paper compares BRACE against MITSIM, a closed-source C++ simulator
//! whose models are only partially published; like the paper, we compare
//! against a reimplementation of the published models. This baseline plays
//! MITSIM's role in Figure 3 and Table 2:
//!
//! * it drives **identical physics** (the decision functions of
//!   [`traffic`](crate::traffic)) through a completely different engine, so
//!   Table 2's RMSPE compares engines, not equations;
//! * it is *hand-optimized* the way the paper describes MITSIM: vehicles
//!   live in per-lane arrays kept sorted by position, and lead/rear lookups
//!   are **nearest-neighbor probes by binary search** — no generic spatial
//!   index is built, no schema, no effect buffers, no replication. This is
//!   the "hand-coded nearest-neighbor implementation" whose single-node
//!   speed BRACE approaches but does not quite match in Figure 3.

use crate::traffic::{drive, LaneView, TrafficParams};
use brace_common::DetRng;

/// One vehicle in the baseline's struct-of-arrays layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Car {
    pub id: u64,
    pub x: f64,
    pub vel: f64,
    pub desired: f64,
    pub changes: f64,
}

/// Hand-coded single-node traffic simulator.
#[derive(Debug, Clone)]
pub struct MitsimBaseline {
    params: TrafficParams,
    /// Per-lane vehicles, sorted ascending by `x` (maintained every tick).
    lanes: Vec<Vec<Car>>,
    tick: u64,
    seed: u64,
    next_id: u64,
}

impl MitsimBaseline {
    /// Seed the same initial condition as
    /// [`TrafficBehavior::population`](crate::traffic::TrafficBehavior::population)
    /// (identical placement logic, same seed stream) so the two engines
    /// simulate the same road.
    pub fn new(params: TrafficParams, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed).stream(0x7247);
        let per_lane = (params.segment * params.density).floor() as usize;
        let mut lanes: Vec<Vec<Car>> = vec![Vec::with_capacity(per_lane * 2); params.lanes];
        let mut id = 0u64;
        for (lane_idx, lane) in lanes.iter_mut().enumerate() {
            let _ = lane_idx;
            for k in 0..per_lane {
                let spacing = params.segment / per_lane as f64;
                let x = (k as f64 + rng.range(0.25, 0.75)) * spacing;
                let desired = params.desired_speed * rng.range(0.8, 1.2);
                lane.push(Car { id, x, vel: desired * rng.range(0.7, 1.0), desired, changes: 0.0 });
                id += 1;
            }
            lane.sort_by(|a, b| a.x.total_cmp(&b.x));
        }
        MitsimBaseline { params, lanes, tick: 0, seed, next_id: id }
    }

    pub fn params(&self) -> &TrafficParams {
        &self.params
    }

    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Total vehicles on the road.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vehicles per lane (for validation statistics).
    pub fn lanes(&self) -> &[Vec<Car>] {
        &self.lanes
    }

    /// The hand-coded nearest-neighbor probe: lead and rear vehicle around
    /// position `x` in `lane`, by binary search in the sorted array.
    fn lane_view(&self, lane: usize, x: f64, exclude: u64) -> LaneView {
        let p = &self.params;
        let cars = &self.lanes[lane];
        let mut view = LaneView::open(p);
        let idx = cars.partition_point(|c| c.x < x);
        // Lead: first car at or after x (skipping self / co-located ids).
        for c in cars[idx..].iter() {
            if c.id == exclude {
                continue;
            }
            let dx = c.x - x;
            if dx > p.lookahead {
                break;
            }
            view.lead_gap = (dx - p.vehicle_length).max(0.0);
            view.lead_vel = c.vel;
            break;
        }
        // Rear: last car strictly before x.
        for c in cars[..idx].iter().rev() {
            if c.id == exclude {
                continue;
            }
            let dx = x - c.x;
            if dx > p.lookahead {
                break;
            }
            view.rear_gap = (dx - p.vehicle_length).max(0.0);
            break;
        }
        view
    }

    /// Advance one tick: decision phase over frozen state, then commit —
    /// the same two-phase discipline as the state-effect pattern, which any
    /// correct time-stepped simulator needs.
    pub fn step(&mut self) {
        let p = self.params.clone();
        // Phase 1: decisions against the frozen tick-start state.
        let mut decisions: Vec<(usize, usize, f64, i32)> = Vec::with_capacity(self.len());
        for lane in 0..p.lanes {
            for i in 0..self.lanes[lane].len() {
                let car = self.lanes[lane][i];
                let current = self.lane_view(lane, car.x, car.id);
                let left = (lane > 0).then(|| self.lane_view(lane - 1, car.x, car.id));
                let right = (lane + 1 < p.lanes).then(|| self.lane_view(lane + 1, car.x, car.id));
                let mut rng = DetRng::seed_from_u64(self.seed).stream(self.tick.wrapping_shl(1)).stream(car.id);
                let (acc, delta) =
                    drive(&p, lane, car.vel, car.desired, [left.as_ref(), Some(&current), right.as_ref()], &mut rng);
                decisions.push((lane, i, acc, delta));
            }
        }
        // Phase 2: commit. Collect moved cars per target lane, then rebuild
        // the sorted arrays.
        let mut staged: Vec<Vec<Car>> = vec![Vec::new(); p.lanes];
        for (lane, i, acc, delta) in decisions {
            let mut car = self.lanes[lane][i];
            car.vel = (car.vel + acc * p.dt).clamp(0.0, p.max_speed);
            let mut target = lane;
            if delta != 0 {
                target = (lane as i64 + delta as i64).clamp(0, p.lanes as i64 - 1) as usize;
                if target != lane {
                    car.changes += 1.0;
                }
            }
            car.x += car.vel * p.dt;
            if car.x > p.segment {
                // Constant upstream traffic: replace with a fresh entry.
                let mut rng = DetRng::seed_from_u64(self.seed).stream(self.tick.wrapping_shl(1) | 1).stream(car.id);
                let desired = p.desired_speed * rng.range(0.8, 1.2);
                staged[target].push(Car {
                    id: self.next_id,
                    x: rng.range(0.0, 5.0),
                    vel: desired * 0.9,
                    desired,
                    changes: 0.0,
                });
                self.next_id += 1;
            } else {
                staged[target].push(car);
            }
        }
        for (lane, mut cars) in staged.into_iter().enumerate() {
            cars.sort_by(|a, b| a.x.total_cmp(&b.x));
            self.lanes[lane] = cars;
        }
        self.tick += 1;
    }

    /// Run `n` ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{state, views_from_scan};

    fn params() -> TrafficParams {
        TrafficParams { segment: 1000.0, lanes: 3, density: 0.03, ..TrafficParams::default() }
    }

    #[test]
    fn seeds_same_population_as_brace_behavior() {
        let p = params();
        let baseline = MitsimBaseline::new(p.clone(), 9);
        let brace = crate::traffic::TrafficBehavior::new(p).population(9);
        assert_eq!(baseline.len(), brace.len());
        // Same ids at the same positions with the same speeds.
        let mut base: Vec<(u64, f64, f64)> =
            baseline.lanes().iter().flat_map(|l| l.iter().map(|c| (c.id, c.x, c.vel))).collect();
        base.sort_by_key(|c| c.0);
        let mut brc: Vec<(u64, f64, f64)> =
            brace.iter().map(|a| (a.id.raw(), a.pos.x, a.state[state::VEL as usize])).collect();
        brc.sort_by_key(|c| c.0);
        assert_eq!(base, brc);
    }

    #[test]
    fn lane_view_matches_scan_reference() {
        let p = params();
        let sim = MitsimBaseline::new(p.clone(), 11);
        // Reference: flat scan over all cars via views_from_scan.
        for lane in 0..p.lanes {
            for car in &sim.lanes()[lane] {
                let got = sim.lane_view(lane, car.x, car.id);
                let all: Vec<(f64, usize, f64)> = sim
                    .lanes()
                    .iter()
                    .enumerate()
                    .flat_map(|(l, cars)| cars.iter().filter(|c| c.id != car.id).map(move |c| (c.x, l, c.vel)))
                    .filter(|(x, _, _)| (x - car.x).abs() <= p.lookahead)
                    .collect();
                let reference = views_from_scan(&p, car.x, lane, all.into_iter());
                assert_eq!(got, reference[1], "car {} lane {lane}", car.id);
            }
        }
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = MitsimBaseline::new(params(), 3);
        let n = sim.len();
        sim.run(100);
        assert_eq!(sim.len(), n);
    }

    #[test]
    fn arrays_stay_sorted() {
        let mut sim = MitsimBaseline::new(params(), 5);
        sim.run(30);
        for lane in sim.lanes() {
            assert!(lane.windows(2).all(|w| w[0].x <= w[1].x));
        }
    }

    #[test]
    fn speeds_stay_bounded() {
        let mut sim = MitsimBaseline::new(params(), 6);
        sim.run(60);
        for lane in sim.lanes() {
            for c in lane {
                assert!((0.0..=36.0).contains(&c.vel), "vel {}", c.vel);
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut sim = MitsimBaseline::new(params(), 8);
            sim.run(25);
            sim.lanes().iter().flat_map(|l| l.iter().map(|c| (c.id, c.x, c.vel))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lane_changes_happen() {
        let mut sim = MitsimBaseline::new(params(), 10);
        sim.run(80);
        let total_changes: f64 = sim.lanes().iter().flat_map(|l| l.iter().map(|c| c.changes)).sum();
        assert!(total_changes > 0.0, "a congested road must see lane changes");
    }
}
