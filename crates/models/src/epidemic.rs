//! SIR epidemic on a plane — infection as a **non-local** ⊕-effect.
//!
//! A population of random walkers carries a classic
//! susceptible → infectious → recovered state machine. Each tick every
//! *infectious* agent pushes one `contacts` unit onto each susceptible
//! agent within the infection radius — a non-local effect assignment in
//! exactly the sense of the paper's predator bite (§4.3): the writer is the
//! infectious agent, the receiver is the victim, and the runtime must route
//! the partial aggregates back to the victim's owner (the second reduce
//! pass of Table 1) unless effect inversion rewrites it away.
//!
//! The contact counts are integer-valued, so the ⊕ = Sum aggregation is
//! **exactly associative**: a distributed run is bit-identical to a
//! single-node run, which is why this scenario sits in the registry's
//! conformance suite as the non-local representative (the float-damage
//! predator carries the documented approximate contract instead).
//!
//! In the update phase a susceptible agent that accumulated `k` contacts
//! becomes infectious with probability `1 − (1 − β)^k` (independent
//! per-contact transmission), drawn from the deterministic per-agent
//! stream; infectious agents recover after a fixed infectious period.
//! Status never moves backwards, so `infectious + recovered` is monotone —
//! the scenario's post-run sanity check.

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::behavior::{Behavior, Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::{Agent, AgentRef, AgentSchema, Combinator};

/// Model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EpidemicParams {
    /// Infection radius (also the schema visibility bound).
    pub radius: f64,
    /// Movement per tick (also the reachability bound).
    pub speed: f64,
    /// Per-contact, per-tick transmission probability β.
    pub beta: f64,
    /// Ticks an agent stays infectious before recovering.
    pub infectious_ticks: f64,
    /// Heading perturbation per tick (radians).
    pub turn: f64,
    /// Initially infectious agents (the index cases, lowest ids).
    pub seeds: usize,
    /// Population density (agents per unit area) used by
    /// [`EpidemicBehavior::population`] to size the square.
    pub density: f64,
}

impl Default for EpidemicParams {
    fn default() -> Self {
        EpidemicParams {
            radius: 2.0,
            speed: 0.5,
            beta: 0.12,
            infectious_ticks: 12.0,
            turn: 0.6,
            seeds: 5,
            density: 0.35,
        }
    }
}

/// Disease status values stored in [`state::STATUS`].
pub mod status {
    pub const SUSCEPTIBLE: f64 = 0.0;
    pub const INFECTIOUS: f64 = 1.0;
    pub const RECOVERED: f64 = 2.0;
}

/// State slots.
pub mod state {
    /// Disease status (see [`super::status`]).
    pub const STATUS: u16 = 0;
    /// Heading angle (radians) for the random walk.
    pub const HEADING: u16 = 1;
    /// Ticks spent infectious.
    pub const TIMER: u16 = 2;
}

/// Effect slots.
pub mod effect {
    /// Infectious contacts received this tick (Sum; integer-valued, so the
    /// aggregation is exactly associative across partitions).
    pub const CONTACTS: u16 = 0;
}

/// The SIR random-walk model as a BRACE behavior.
#[derive(Debug, Clone)]
pub struct EpidemicBehavior {
    params: EpidemicParams,
    schema: AgentSchema,
}

impl EpidemicBehavior {
    pub fn new(params: EpidemicParams) -> Self {
        let schema = AgentSchema::builder("Epidemic")
            .state("status")
            .state("heading")
            .state("timer")
            .effect("contacts", Combinator::Sum)
            .visibility(params.radius)
            .reachability(params.speed)
            .nonlocal_effects(true)
            .build()
            .expect("static schema is valid");
        EpidemicBehavior { params, schema }
    }

    pub fn params(&self) -> &EpidemicParams {
        &self.params
    }

    /// Side length of the square holding `n` agents at the configured
    /// density.
    pub fn side(&self, n: usize) -> f64 {
        (n as f64 / self.params.density).sqrt().max(1.0)
    }

    /// `n` walkers scattered over the density-sized square; the first
    /// `seeds` agents start infectious, everyone else susceptible.
    pub fn population(&self, n: usize, seed: u64) -> Vec<Agent> {
        let side = self.side(n);
        let mut rng = DetRng::seed_from_u64(seed).stream(0x51E0);
        (0..n)
            .map(|i| {
                let pos = Vec2::new(rng.range(0.0, side), rng.range(0.0, side));
                let mut a = Agent::new(AgentId::new(i as u64), pos, &self.schema);
                a.state[state::STATUS as usize] =
                    if i < self.params.seeds { status::INFECTIOUS } else { status::SUSCEPTIBLE };
                a.state[state::HEADING as usize] = rng.range(0.0, std::f64::consts::TAU);
                a
            })
            .collect()
    }
}

impl Behavior for EpidemicBehavior {
    fn schema(&self) -> &AgentSchema {
        &self.schema
    }

    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        // Only infectious agents write, and only onto susceptible victims:
        // the non-local push of the paper's bite, with an integer payload.
        if me.state(state::STATUS) != status::INFECTIOUS {
            return;
        }
        let r2 = self.params.radius * self.params.radius;
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            if nb.agent.state(state::STATUS) != status::SUSCEPTIBLE {
                continue;
            }
            // The visible region is the index's square; the disease is
            // radial — filter on squared distance.
            if nb.agent.pos().dist2(my_pos) <= r2 {
                eff.remote(nb.row, FieldId::new(effect::CONTACTS), 1.0);
            }
        }
    }

    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let p = &self.params;
        let s = me.state[state::STATUS as usize];
        if s == status::SUSCEPTIBLE {
            let k = me.effect(FieldId::new(effect::CONTACTS));
            if k > 0.0 {
                // Independent per-contact transmission: 1 − (1 − β)^k.
                let escape = (1.0 - p.beta).powi(k as i32);
                if ctx.rng.chance(1.0 - escape) {
                    me.state[state::STATUS as usize] = status::INFECTIOUS;
                    me.state[state::TIMER as usize] = 0.0;
                }
            }
        } else if s == status::INFECTIOUS {
            let t = me.state[state::TIMER as usize] + 1.0;
            me.state[state::TIMER as usize] = t;
            if t >= p.infectious_ticks {
                me.state[state::STATUS as usize] = status::RECOVERED;
            }
        }
        let heading = me.state[state::HEADING as usize] + ctx.rng.range(-p.turn, p.turn);
        me.state[state::HEADING as usize] = heading;
        me.pos += Vec2::new(heading.cos(), heading.sin()) * p.speed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_core::Simulation;

    fn counts(agents: &[Agent]) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for a in agents {
            match a.state[state::STATUS as usize] {
                s if s == status::SUSCEPTIBLE => c.0 += 1,
                s if s == status::INFECTIOUS => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }

    #[test]
    fn population_has_seeds() {
        let b = EpidemicBehavior::new(EpidemicParams::default());
        let pop = b.population(200, 1);
        let (s, i, r) = counts(&pop);
        assert_eq!((s, i, r), (195, 5, 0));
    }

    #[test]
    fn epidemic_spreads_and_recovers() {
        let b = EpidemicBehavior::new(EpidemicParams::default());
        let pop = b.population(400, 2);
        let mut sim = Simulation::builder(b).agents(pop).seed(3).build().unwrap();
        sim.run(40);
        let world = sim.agents();
        assert_eq!(world.len(), 400, "population is closed");
        let (_, i, r) = counts(&world);
        assert!(i + r > 5, "infection must spread beyond the index cases, got {}", i + r);
        assert!(r > 0, "40 ticks exceed the infectious period; someone must have recovered");
    }

    #[test]
    fn status_never_moves_backwards() {
        let b = EpidemicBehavior::new(EpidemicParams::default());
        let pop = b.population(150, 4);
        let mut sim = Simulation::builder(b).agents(pop).seed(5).build().unwrap();
        let mut ever_infected: std::collections::HashSet<u64> = (0..5).collect();
        for _ in 0..30 {
            sim.step();
            for a in sim.agents() {
                let s = a.state[state::STATUS as usize];
                if s != status::SUSCEPTIBLE {
                    ever_infected.insert(a.id.raw());
                } else {
                    assert!(!ever_infected.contains(&a.id.raw()), "agent {} reverted to susceptible", a.id);
                }
            }
        }
    }

    #[test]
    fn zero_beta_never_infects() {
        let b = EpidemicBehavior::new(EpidemicParams { beta: 0.0, ..Default::default() });
        let pop = b.population(100, 6);
        let mut sim = Simulation::builder(b).agents(pop).seed(7).build().unwrap();
        sim.run(20);
        let (s, i, r) = counts(&sim.agents());
        assert_eq!(s, 95, "nobody beyond the seeds may catch anything");
        assert_eq!(i + r, 5);
    }
}
