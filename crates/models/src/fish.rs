//! The Couzin et al. fish-school model (information transfer in animal
//! groups, Nature 433, 2005) — the paper's second evaluation workload.
//!
//! Per tick, each fish inspects its visible neighborhood:
//!
//! * **Avoidance** (highest priority): if any neighbor is closer than the
//!   personal-zone radius α, turn away from the sum of directions to those
//!   neighbors.
//! * **Attraction + alignment**: otherwise, steer toward neighbors within
//!   the visible radius ρ > α and align with their headings.
//! * **Informed individuals**: a fraction of fish have a preferred
//!   direction g (e.g. toward food or a migration route) and balance it
//!   against the social vector with weight ω. Everyone else is naive.
//!
//! The "ocean" is unbounded and the school's spatial distribution changes
//! dramatically as informed individuals lead — which is precisely why this
//! workload drives the paper's load-balancing experiments (Figures 7/8):
//! with **two** informed classes pulling in opposite directions the
//! population splits into two schools that drift apart, starving all but
//! two partitions unless the balancer intervenes.
//!
//! All effects are local (each fish aggregates its neighbors' influence on
//! itself), so the runtime needs a single reduce pass.

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::behavior::{Behavior, NeighborBatch, Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::kernels::with_lane_scratch;
use brace_core::{Agent, AgentRef, AgentSchema, Combinator};

/// Model parameters. Distances in body lengths, speeds in body lengths per
/// tick.
#[derive(Debug, Clone, PartialEq)]
pub struct FishParams {
    /// Personal (repulsion) zone radius α.
    pub alpha: f64,
    /// Visible (attraction/alignment) radius ρ > α; also the schema
    /// visibility bound.
    pub rho: f64,
    /// Swim speed (distance per tick).
    pub speed: f64,
    /// Informed-direction weight ω.
    pub omega: f64,
    /// Random heading perturbation magnitude.
    pub jitter: f64,
    /// Fraction of fish informed of direction A (+x).
    pub informed_a: f64,
    /// Fraction informed of direction B (−x). Set to 0 for the classic
    /// single-leader configuration.
    pub informed_b: f64,
    /// Initial school radius.
    pub school_radius: f64,
    /// Batch-engagement override. `None` (default) applies the engine-wide
    /// cost rule (`brace_core::behavior::batch_engaged`) to
    /// [`FORCE_KERNEL_COST`] — which engages [`force_kernel`], matching
    /// the measured 2–8× batched gains that made fish the motivating case
    /// for lane kernels. Pure scheduling policy, bit-identical either way.
    /// Re-measured after the grid's bucket arena made the index-side
    /// filter kernel-native: most of the grid's batched gain now comes
    /// from that filter, and the force kernel's own margin there is near
    /// parity (within run noise at 100k) — engagement stays on, carried by
    /// the KD-tree and scan cases the shared cost rule also governs.
    pub batch_engagement: Option<bool>,
}

impl Default for FishParams {
    fn default() -> Self {
        FishParams {
            alpha: 1.0,
            rho: 6.0,
            speed: 0.75,
            omega: 0.5,
            jitter: 0.05,
            informed_a: 0.05,
            informed_b: 0.05,
            school_radius: 20.0,
            batch_engagement: None,
        }
    }
}

/// State slots.
pub mod state {
    /// Heading x component (unit vector).
    pub const HX: u16 = 0;
    /// Heading y component.
    pub const HY: u16 = 1;
    /// Informed class: 0 naive, 1 prefers +x, 2 prefers −x.
    pub const CLASS: u16 = 2;
}

/// Effect slots.
pub mod effect {
    /// Repulsion vector (sum over personal-zone neighbors).
    pub const REP_X: u16 = 0;
    pub const REP_Y: u16 = 1;
    /// Attraction vector (sum over visible neighbors).
    pub const ATT_X: u16 = 2;
    pub const ATT_Y: u16 = 3;
    /// Alignment vector (sum of neighbor headings).
    pub const ALI_X: u16 = 4;
    pub const ALI_Y: u16 = 5;
    /// Personal-zone neighbor count.
    pub const N_REP: u16 = 6;
    /// Visible neighbor count.
    pub const N_VIS: u16 = 7;
}

/// Per-candidate cost of [`candidate_force`] plus the zone fold, in the
/// analyzer's ALU-op units (the same scale the BRASIL compiler scores its
/// lane programs on): squared distance 3, square root 8, two divides for
/// the unit direction 16, zone compares and force accumulation ≈6 — well
/// above `brace_core::behavior::BATCH_COST_THRESHOLD`, so the force kernel
/// engages by default.
pub const FORCE_KERNEL_COST: u32 = 33;

/// Per-candidate force geometry, shared verbatim by the scalar query path
/// and (op for op) the lane kernel [`force_kernel`], so the two are
/// bit-identical: squared distance from the querying fish to the candidate
/// plus the unit direction toward it — zero when (near) coincident, the
/// same guard `Vec2::normalized` applies, but on `sqrt(d²)` rather than
/// `hypot` so the root vectorizes. Zone cutoffs compare against squared
/// radii for the same reason.
#[inline]
pub(crate) fn candidate_force(mx: f64, my: f64, cx: f64, cy: f64) -> (f64, f64, f64) {
    let dx = cx - mx;
    let dy = cy - my;
    let d2 = dx * dx + dy * dy;
    let d = d2.sqrt();
    if d > f64::EPSILON {
        (d2, dx / d, dy / d)
    } else {
        (d2, 0.0, 0.0)
    }
}

/// Lane kernel behind [`FishBehavior`]'s batched query: [`candidate_force`]
/// over whole candidate columns. Written branch-free (the division always
/// runs; degenerate lanes — including the querying fish itself at distance
/// zero — select the zero direction afterwards) so LLVM vectorizes the
/// squares, the root and the divides; every element is IEEE-identical to
/// the scalar helper.
pub fn force_kernel(xs: &[f64], ys: &[f64], mx: f64, my: f64, d2: &mut Vec<f64>, ux: &mut Vec<f64>, uy: &mut Vec<f64>) {
    let n = xs.len();
    debug_assert_eq!(ys.len(), n, "coordinate columns must be parallel");
    d2.clear();
    d2.resize(n, 0.0);
    ux.clear();
    ux.resize(n, 0.0);
    uy.clear();
    uy.resize(n, 0.0);
    // Lockstep iterators (not indexing): the bounds checks that block the
    // loop vectorizer disappear, and LLVM emits packed sqrt/div.
    let ys = &ys[..n];
    let it = xs.iter().zip(ys).zip(d2.iter_mut().zip(ux.iter_mut()).zip(uy.iter_mut()));
    for ((&x, &y), ((d2i, uxi), uyi)) in it {
        let dx = x - mx;
        let dy = y - my;
        let q = dx * dx + dy * dy;
        let d = q.sqrt();
        let inv_x = dx / d;
        let inv_y = dy / d;
        let ok = d > f64::EPSILON;
        *d2i = q;
        *uxi = if ok { inv_x } else { 0.0 };
        *uyi = if ok { inv_y } else { 0.0 };
    }
}

/// The fish school as a BRACE behavior.
#[derive(Debug, Clone)]
pub struct FishBehavior {
    params: FishParams,
    schema: AgentSchema,
}

impl FishBehavior {
    pub fn new(params: FishParams) -> Self {
        assert!(params.rho > params.alpha, "visible zone must exceed the personal zone");
        let schema = AgentSchema::builder("Fish")
            .state("hx")
            .state("hy")
            .state("class")
            .effect("rep_x", Combinator::Sum)
            .effect("rep_y", Combinator::Sum)
            .effect("att_x", Combinator::Sum)
            .effect("att_y", Combinator::Sum)
            .effect("ali_x", Combinator::Sum)
            .effect("ali_y", Combinator::Sum)
            .effect("n_rep", Combinator::Sum)
            .effect("n_vis", Combinator::Sum)
            .visibility(params.rho)
            .reachability(params.speed)
            .build()
            .expect("static schema is valid");
        FishBehavior { params, schema }
    }

    pub fn params(&self) -> &FishParams {
        &self.params
    }

    /// A school of `n` fish around the origin with random headings;
    /// informed classes assigned by the configured fractions.
    pub fn population(&self, n: usize, seed: u64) -> Vec<Agent> {
        let p = &self.params;
        let mut rng = DetRng::seed_from_u64(seed).stream(0xF155);
        (0..n)
            .map(|i| {
                let r = p.school_radius * rng.unit().sqrt();
                let theta = rng.range(0.0, std::f64::consts::TAU);
                let pos = Vec2::new(r * theta.cos(), r * theta.sin());
                let heading = rng.range(0.0, std::f64::consts::TAU);
                let class = {
                    let u = rng.unit();
                    if u < p.informed_a {
                        1.0
                    } else if u < p.informed_a + p.informed_b {
                        2.0
                    } else {
                        0.0
                    }
                };
                let mut a = Agent::new(AgentId::new(i as u64), pos, &self.schema);
                a.state[state::HX as usize] = heading.cos();
                a.state[state::HY as usize] = heading.sin();
                a.state[state::CLASS as usize] = class;
                a
            })
            .collect()
    }
}

impl Behavior for FishBehavior {
    fn schema(&self) -> &AgentSchema {
        &self.schema
    }

    fn batch_profitable(&self) -> bool {
        brace_core::behavior::batch_engaged(FORCE_KERNEL_COST, self.params.batch_engagement)
    }

    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        let p = &self.params;
        let (alpha2, rho2) = (p.alpha * p.alpha, p.rho * p.rho);
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            let npos = nb.agent.pos();
            let (d2, ux, uy) = candidate_force(my_pos.x, my_pos.y, npos.x, npos.y);
            if d2 > rho2 {
                // Corner of the square visible region beyond ρ: the model
                // is radial, the index is rectangular; filter here.
                continue;
            }
            if d2 <= alpha2 {
                eff.local(FieldId::new(effect::REP_X), -ux);
                eff.local(FieldId::new(effect::REP_Y), -uy);
                eff.local(FieldId::new(effect::N_REP), 1.0);
            } else {
                eff.local(FieldId::new(effect::ATT_X), ux);
                eff.local(FieldId::new(effect::ATT_Y), uy);
                eff.local(FieldId::new(effect::ALI_X), nb.agent.state(state::HX));
                eff.local(FieldId::new(effect::ALI_Y), nb.agent.state(state::HY));
                eff.local(FieldId::new(effect::N_VIS), 1.0);
            }
        }
    }

    /// Batched query: gather positions + headings, run [`force_kernel`]
    /// over the candidate columns, then emit effects in candidate order —
    /// the same fold, over lane-computed values, as the scalar path.
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        _rng: &mut DetRng,
    ) {
        let p = &self.params;
        let (alpha2, rho2) = (p.alpha * p.alpha, p.rho * p.rho);
        let my_pos = me.pos();
        let g = batch.gather(&[state::HX, state::HY]);
        with_lane_scratch(|s| {
            force_kernel(g.xs, g.ys, my_pos.x, my_pos.y, &mut s.a, &mut s.b, &mut s.c);
            let (hx, hy) = (g.state(0), g.state(1));
            for i in 0..g.len() {
                if g.rows[i] == g.me {
                    continue;
                }
                let d2 = s.a[i];
                if d2 > rho2 {
                    continue;
                }
                if d2 <= alpha2 {
                    eff.local(FieldId::new(effect::REP_X), -s.b[i]);
                    eff.local(FieldId::new(effect::REP_Y), -s.c[i]);
                    eff.local(FieldId::new(effect::N_REP), 1.0);
                } else {
                    eff.local(FieldId::new(effect::ATT_X), s.b[i]);
                    eff.local(FieldId::new(effect::ATT_Y), s.c[i]);
                    eff.local(FieldId::new(effect::ALI_X), hx[i]);
                    eff.local(FieldId::new(effect::ALI_Y), hy[i]);
                    eff.local(FieldId::new(effect::N_VIS), 1.0);
                }
            }
        });
    }

    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let p = &self.params;
        let n_rep = me.effect(FieldId::new(effect::N_REP));
        let social = if n_rep > 0.0 {
            // Avoidance overrides everything (highest priority).
            Vec2::new(me.effect(FieldId::new(effect::REP_X)), me.effect(FieldId::new(effect::REP_Y)))
        } else if me.effect(FieldId::new(effect::N_VIS)) > 0.0 {
            let att = Vec2::new(me.effect(FieldId::new(effect::ATT_X)), me.effect(FieldId::new(effect::ATT_Y)));
            let ali = Vec2::new(me.effect(FieldId::new(effect::ALI_X)), me.effect(FieldId::new(effect::ALI_Y)));
            att.normalized() + ali.normalized()
        } else {
            // Alone: keep heading.
            Vec2::new(me.state[state::HX as usize], me.state[state::HY as usize])
        };
        let preferred = match me.state[state::CLASS as usize] as i64 {
            1 => Vec2::new(1.0, 0.0),
            2 => Vec2::new(-1.0, 0.0),
            _ => Vec2::ZERO,
        };
        let jitter = Vec2::new(ctx.rng.range(-p.jitter, p.jitter), ctx.rng.range(-p.jitter, p.jitter));
        let mut heading = (social.normalized() + preferred * p.omega + jitter).normalized();
        if heading == Vec2::ZERO {
            heading = Vec2::new(me.state[state::HX as usize], me.state[state::HY as usize]);
        }
        me.state[state::HX as usize] = heading.x;
        me.state[state::HY as usize] = heading.y;
        me.pos += heading * p.speed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One engagement rule governs hand-coded and compiled behaviors: the
    /// force kernel's cost clears the shared threshold (engaged by
    /// default), and the override pins the decision either way.
    #[test]
    fn batch_engagement_follows_the_shared_cost_rule() {
        use brace_core::behavior::{batch_engaged, Behavior};
        assert!(batch_engaged(FORCE_KERNEL_COST, None));
        assert!(FishBehavior::new(FishParams::default()).batch_profitable());
        let off = FishParams { batch_engagement: Some(false), ..FishParams::default() };
        assert!(!FishBehavior::new(off).batch_profitable());
    }

    use brace_core::Simulation;

    fn behavior() -> FishBehavior {
        FishBehavior::new(FishParams::default())
    }

    /// Pin the force kernel's scalar-tail handling at candidate counts
    /// straddling the lane width (0, 1, L−1, L, L+1, 2L−1): every element
    /// must match the per-candidate definition bit for bit.
    #[test]
    fn force_kernel_tail_counts_match_scalar_definition() {
        const L: usize = brace_spatial::kernels::LANES;
        let (mx, my) = (0.3, -1.7);
        for n in [0, 1, L - 1, L, L + 1, 2 * L - 1] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.7 - 1.0).collect();
            let mut ys: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.3).collect();
            if n > 1 {
                // Coincident candidate: the degenerate-direction select.
                ys[1] = my;
            }
            let (mut d2, mut ux, mut uy) = (Vec::new(), Vec::new(), Vec::new());
            force_kernel(&xs, &ys, mx, my, &mut d2, &mut ux, &mut uy);
            assert_eq!(d2.len(), n);
            for i in 0..n {
                let (sd2, sux, suy) = candidate_force(mx, my, xs[i], ys[i]);
                assert_eq!(d2[i].to_bits(), sd2.to_bits(), "count {n} element {i}");
                assert_eq!(ux[i].to_bits(), sux.to_bits(), "count {n} element {i}");
                assert_eq!(uy[i].to_bits(), suy.to_bits(), "count {n} element {i}");
            }
        }
    }

    #[test]
    fn population_has_requested_shape() {
        let b = behavior();
        let pop = b.population(200, 1);
        assert_eq!(pop.len(), 200);
        for a in &pop {
            assert!(a.pos.norm() <= 20.0 + 1e-9);
            let h = Vec2::new(a.state[0], a.state[1]);
            assert!((h.norm() - 1.0).abs() < 1e-9);
        }
        // Informed classes near the configured 5% + 5%.
        let informed = pop.iter().filter(|a| a.state[2] != 0.0).count();
        assert!((10..=35).contains(&informed), "{informed} informed of 200");
    }

    #[test]
    fn close_pair_repels() {
        let b = behavior();
        let schema = b.schema().clone();
        let mut a0 = Agent::new(AgentId::new(0), Vec2::new(0.0, 0.0), &schema);
        let mut a1 = Agent::new(AgentId::new(1), Vec2::new(0.5, 0.0), &schema);
        for a in [&mut a0, &mut a1] {
            a.state[state::HX as usize] = 0.0;
            a.state[state::HY as usize] = 1.0;
        }
        let mut sim = Simulation::builder(b).agents(vec![a0, a1]).seed(2).build().unwrap();
        sim.step();
        let d_after = sim.agents()[0].pos.dist(sim.agents()[1].pos);
        assert!(d_after > 0.5, "repulsion must separate a close pair, d = {d_after}");
    }

    #[test]
    fn distant_pair_attracts() {
        let b = behavior();
        let schema = b.schema().clone();
        let mut a0 = Agent::new(AgentId::new(0), Vec2::new(0.0, 0.0), &schema);
        let mut a1 = Agent::new(AgentId::new(1), Vec2::new(4.0, 0.0), &schema);
        // Headings perpendicular so attraction dominates the alignment sum.
        a0.state[state::HX as usize] = 0.0;
        a0.state[state::HY as usize] = 1.0;
        a1.state[state::HX as usize] = 0.0;
        a1.state[state::HY as usize] = -1.0;
        let b2 = FishBehavior::new(FishParams { jitter: 0.0, ..FishParams::default() });
        let mut sim = Simulation::builder(b2).agents(vec![a0, a1]).seed(3).build().unwrap();
        let _ = b;
        sim.step();
        let d_after = sim.agents()[0].pos.dist(sim.agents()[1].pos);
        assert!(d_after < 4.0, "attraction must pull a visible pair together, d = {d_after}");
    }

    #[test]
    fn informed_fish_lead_the_school() {
        // All fish informed of +x must march right.
        let params = FishParams { informed_a: 1.0, informed_b: 0.0, jitter: 0.0, omega: 2.0, ..Default::default() };
        let b = FishBehavior::new(params);
        let pop = b.population(100, 4);
        let cx0: f64 = pop.iter().map(|a| a.pos.x).sum::<f64>() / 100.0;
        let mut sim = Simulation::builder(b).agents(pop).seed(4).build().unwrap();
        sim.run(30);
        let cx1: f64 = sim.agents().iter().map(|a| a.pos.x).sum::<f64>() / 100.0;
        assert!(cx1 > cx0 + 10.0, "school must travel +x: {cx0} -> {cx1}");
    }

    #[test]
    fn two_informed_classes_split_the_school() {
        let params = FishParams {
            informed_a: 0.15,
            informed_b: 0.15,
            omega: 1.5,
            jitter: 0.02,
            school_radius: 10.0,
            ..Default::default()
        };
        let b = FishBehavior::new(params);
        let pop = b.population(300, 5);
        let mut sim = Simulation::builder(b).agents(pop).seed(5).build().unwrap();
        sim.run(150);
        let xs: Vec<f64> = sim.agents().iter().map(|a| a.pos.x).collect();
        let spread =
            xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x)) - xs.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        assert!(spread > 60.0, "two leader classes must stretch the school, spread = {spread}");
    }

    #[test]
    fn heading_stays_unit_length() {
        let b = behavior();
        let pop = b.population(50, 6);
        let mut sim = Simulation::builder(b).agents(pop).seed(6).build().unwrap();
        sim.run(20);
        for a in sim.agents() {
            let h = Vec2::new(a.state[0], a.state[1]);
            assert!((h.norm() - 1.0).abs() < 1e-6, "heading norm {}", h.norm());
        }
    }

    #[test]
    fn speed_is_bounded_by_reachability() {
        let b = behavior();
        let pop = b.population(80, 7);
        let before: Vec<Vec2> = pop.iter().map(|a| a.pos).collect();
        let mut sim = Simulation::builder(b).agents(pop).seed(7).build().unwrap();
        sim.step();
        for (a, b0) in sim.agents().iter().zip(&before) {
            assert!(a.pos.dist_linf(*b0) <= 0.75 + 1e-9);
        }
    }
}
