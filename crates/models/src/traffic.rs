//! MITSIM-style microscopic traffic simulation.
//!
//! Implements the behaviors the paper attributes to MITSIM (§5.1, Appendix
//! C): per tick, each driver
//!
//! 1. finds the lead and rear vehicles in her current, left and right lanes
//!    within a fixed lookahead distance ρ (the paper fixes ρ = 200 "in order
//!    to apply single-node spatial indexing");
//! 2. computes a utility for each lane, makes a probabilistic lane-selection
//!    decision, and checks lead/rear **gap acceptance** in the target lane;
//! 3. otherwise applies the **car-following** model against the lead
//!    vehicle — free-flow toward the desired speed when the headway is
//!    large, emergency braking when it is dangerously small, a
//!    GM-family stimulus-response law in between.
//!
//! The road is a linear segment of configurable length with constant
//! upstream traffic: a vehicle leaving the downstream end is replaced by a
//! fresh vehicle entering upstream (paper: "a linear segment of highway
//! with constant up-stream traffic"), keeping density stationary.
//!
//! Geometry: `pos.x` is the longitudinal coordinate; `pos.y` *is the lane
//! index*, so the engine's rectangular visible region covers neighboring
//! lanes and the same spatial machinery (indexing, partitioning,
//! replication) serves the highway unchanged.
//!
//! All effects are **local** (each driver decides for herself), so the
//! distributed runtime uses a single reduce pass — the paper notes the same
//! of its traffic workload.
//!
//! The decision logic lives in free functions over [`TrafficParams`] so the
//! [`MitsimBaseline`](crate::mitsim::MitsimBaseline) drives *identical
//! physics* through a completely different (hand-coded) engine; Table 2
//! then measures how faithfully the two engines agree on aggregate
//! statistics.

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::behavior::{Behavior, NeighborBatch, Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::kernels::with_lane_scratch;
use brace_core::{Agent, AgentRef, AgentSchema, Combinator};

/// Model parameters (time unit: seconds; distance unit: meters).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficParams {
    /// Segment length.
    pub segment: f64,
    /// Number of lanes.
    pub lanes: usize,
    /// Lookahead/lookback distance ρ (the paper fixes 200).
    pub lookahead: f64,
    /// Tick length in seconds.
    pub dt: f64,
    /// Mean desired speed (m/s); per-driver desired speeds spread ±20%.
    pub desired_speed: f64,
    /// Hard speed cap.
    pub max_speed: f64,
    /// Maximum acceleration (m/s²).
    pub max_accel: f64,
    /// Maximum (emergency) deceleration, positive number (m/s²).
    pub max_decel: f64,
    /// Headway (s) above which the driver is in free-flow.
    pub free_headway: f64,
    /// Headway (s) below which the driver brakes hard.
    pub emergency_headway: f64,
    /// GM car-following sensitivity constant.
    pub cf_alpha: f64,
    /// Minimum acceptable lead gap (m) for a lane change.
    pub min_lead_gap: f64,
    /// Minimum acceptable rear gap (m) for a lane change.
    pub min_rear_gap: f64,
    /// Utility advantage required before considering a change.
    pub utility_threshold: f64,
    /// Probability of executing an advantageous, acceptable change.
    pub change_probability: f64,
    /// Reluctance penalty for the rightmost lane (the paper observes
    /// drivers avoid lane 4, leaving it underpopulated).
    pub rightmost_penalty: f64,
    /// Vehicle length (m), for density and gap computations.
    pub vehicle_length: f64,
    /// Upstream spawn density: vehicles per meter per lane at entry.
    pub density: f64,
    /// Nearest-neighbor probe: `Some(k)` makes each driver inspect only her
    /// `k` nearest vehicles (cropped to the lookahead) instead of scanning
    /// the full range — MITSIM's hand-coded lookup semantics, the paper's
    /// nearest-neighbor-indexing extension ("planned future work … we
    /// expect to achieve performance parity with MITSIM"). `None` (default)
    /// is the fixed-lookahead scan the paper used for validation.
    pub knn: Option<usize>,
    /// Batch-engagement override for the gap-scan kernel ([`gap_kernel`]).
    /// `None` (default) applies the engine-wide cost rule
    /// (`brace_core::behavior::batch_engaged`) to [`GAP_KERNEL_COST`] —
    /// which stays scalar: the per-candidate map is three subtractions,
    /// too cheap to amortize the candidate gather on the reference
    /// container (≈0.75× query throughput measured there; re-measured at
    /// ≈0.7–0.87× after the grid's bucket arena made its *index-side*
    /// filter kernel-native — the index filter and this behavior-side
    /// kernel engage independently, and the gap scan still loses). Results
    /// are
    /// bit-identical either way (the kernel conformance contract), so this
    /// is pure scheduling policy; pin `Some(true)` where the
    /// `kernel_speedup` ablation row says it pays.
    pub batch_engagement: Option<bool>,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            segment: 5_000.0,
            lanes: 4,
            lookahead: 200.0,
            dt: 1.0,
            desired_speed: 25.0,
            max_speed: 36.0,
            max_accel: 2.5,
            max_decel: 5.0,
            free_headway: 4.0,
            emergency_headway: 0.8,
            cf_alpha: 1.25,
            min_lead_gap: 8.0,
            min_rear_gap: 6.0,
            utility_threshold: 2.0,
            change_probability: 0.6,
            rightmost_penalty: 5.0,
            vehicle_length: 5.0,
            density: 0.02,
            knn: None,
            batch_engagement: None,
        }
    }
}

/// State slots (schema order).
pub mod state {
    /// Longitudinal velocity (m/s).
    pub const VEL: u16 = 0;
    /// Per-driver desired speed (m/s).
    pub const DESIRED: u16 = 1;
    /// Cumulative lane changes made by this vehicle (statistics).
    pub const CHANGES: u16 = 2;
}

/// Effect slots (schema order). Every effect is written exactly once per
/// tick by its own agent, so the combinator choice is immaterial; `Sum`
/// with a single assignment is exact.
pub mod effect {
    /// Chosen acceleration for this tick (m/s²).
    pub const ACC: u16 = 0;
    /// Chosen lane delta for this tick (−1, 0, +1).
    pub const LANE: u16 = 1;
}

/// What a driver sees in one lane: lead/rear gaps and the lead's speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneView {
    /// Gap (m) to the lead vehicle's tail, `lookahead` when none visible
    /// (the paper: "she will just assume the distance … is infinite" — we
    /// saturate at ρ, which the free-flow regime treats identically).
    pub lead_gap: f64,
    /// Lead vehicle's speed, `max_speed` when none visible.
    pub lead_vel: f64,
    /// Gap (m) to the rear vehicle's nose, `lookahead` when none visible.
    pub rear_gap: f64,
}

impl LaneView {
    /// The empty-lane view for parameters `p`.
    pub fn open(p: &TrafficParams) -> LaneView {
        LaneView { lead_gap: p.lookahead, lead_vel: p.max_speed, rear_gap: p.lookahead }
    }
}

/// Car-following acceleration (free-flow / emergency / GM regimes).
pub fn car_following_accel(p: &TrafficParams, vel: f64, desired: f64, view: &LaneView) -> f64 {
    let headway = view.lead_gap / vel.max(1.0);
    if headway >= p.free_headway {
        // Free flow: relax toward the desired speed.
        (0.6 * (desired - vel)).clamp(-p.max_decel, p.max_accel)
    } else if headway <= p.emergency_headway {
        // Emergency regime.
        -p.max_decel
    } else {
        // GM stimulus-response: sensitivity * Δv / gap, saturated.
        let dv = view.lead_vel - vel;
        (p.cf_alpha * vel.max(1.0) * dv / view.lead_gap.max(1.0)).clamp(-p.max_decel, p.max_accel)
    }
}

/// Lane utility: how attractive a lane looks (bigger is better).
pub fn lane_utility(p: &TrafficParams, lane: usize, view: &LaneView) -> f64 {
    let mut u = view.lead_gap.min(p.lookahead) * 0.1 + view.lead_vel * 0.5;
    if lane + 1 == p.lanes {
        u -= p.rightmost_penalty;
    }
    u
}

/// Gap acceptance for a change into `view`.
pub fn gap_acceptable(p: &TrafficParams, view: &LaneView) -> bool {
    view.lead_gap >= p.min_lead_gap && view.rear_gap >= p.min_rear_gap
}

/// The full per-tick decision: returns `(acceleration, lane_delta)`.
///
/// `views[0]` is the left lane (`None` at the leftmost), `views[1]` the
/// current lane, `views[2]` the right lane (`None` at the rightmost).
pub fn drive(
    p: &TrafficParams,
    lane: usize,
    vel: f64,
    desired: f64,
    views: [Option<&LaneView>; 3],
    rng: &mut DetRng,
) -> (f64, i32) {
    let current = views[1].expect("current lane always has a view");
    let u_cur = lane_utility(p, lane, current);
    // Candidate evaluation: left = lane-1, right = lane+1.
    let mut best: Option<(i32, f64, &LaneView)> = None;
    for (delta, view) in [(-1i32, views[0]), (1i32, views[2])] {
        let Some(view) = view else { continue };
        let target_lane = (lane as i64 + delta as i64) as usize;
        let u = lane_utility(p, target_lane, view);
        if u > u_cur + p.utility_threshold && gap_acceptable(p, view) && best.is_none_or(|(_, bu, _)| u > bu) {
            best = Some((delta, u, view));
        }
    }
    if let Some((delta, _, _)) = best {
        if rng.chance(p.change_probability) {
            // Keep current-lane acceleration while merging.
            return (car_following_accel(p, vel, desired, current), delta);
        }
    }
    (car_following_accel(p, vel, desired, current), 0)
}

/// Fold one candidate into the three lane views — the order-sensitive half
/// of the gap scan (nearest-per-lane selection with a strict-`<` first-wins
/// tie rule and the zero-offset special case), shared by the scalar
/// [`views_from_scan`] and the batched fold in
/// [`TrafficBehavior::query_batch`] so the bit-identity contract has a
/// single source of truth. `lead_gap`/`rear_gap` are the precomputed
/// `(±dx − L).max(0)` values ([`gap_kernel`]'s per-candidate map); only the
/// side selected by `dx`'s sign is read.
#[inline]
fn fold_candidate(views: &mut [LaneView; 3], lane_delta: i64, dx: f64, lead_gap: f64, rear_gap: f64, vel: f64) {
    let slot = match lane_delta {
        -1 => 0,
        0 => 1,
        1 => 2,
        _ => return,
    };
    if dx > 0.0 {
        if lead_gap < views[slot].lead_gap {
            views[slot].lead_gap = lead_gap;
            views[slot].lead_vel = vel;
        }
    } else if dx < 0.0 {
        if rear_gap < views[slot].rear_gap {
            views[slot].rear_gap = rear_gap;
        }
    } else {
        // Same position, adjacent lane: treat as zero gap both ways.
        views[slot].lead_gap = 0.0;
        views[slot].lead_vel = vel;
        views[slot].rear_gap = 0.0;
    }
}

/// Compute the three lane views from a neighbor scan. Shared by the BRACE
/// behavior (neighbors from the spatial index) and by tests; the hand-coded
/// baseline computes the same views from its per-lane sorted arrays.
pub fn views_from_scan(
    p: &TrafficParams,
    my_x: f64,
    my_lane: usize,
    neighbors: impl Iterator<Item = (f64, usize, f64)>, // (x, lane, vel)
) -> [LaneView; 3] {
    let mut views = [LaneView::open(p), LaneView::open(p), LaneView::open(p)];
    for (x, lane, vel) in neighbors {
        let dx = x - my_x;
        let lead = (dx - p.vehicle_length).max(0.0);
        let rear = (-dx - p.vehicle_length).max(0.0);
        fold_candidate(&mut views, lane as i64 - my_lane as i64, dx, lead, rear, vel);
    }
    views
}

/// Per-candidate cost of the gap scan, in the analyzer's ALU-op units
/// (the scale the BRASIL compiler scores its lane programs on): three
/// subtractions per candidate — below
/// `brace_core::behavior::BATCH_COST_THRESHOLD`, so [`gap_kernel`] stays
/// off the default path (measured ≈0.75× batched on the reference
/// container).
pub const GAP_KERNEL_COST: u32 = 3;

/// Lane kernel behind [`TrafficBehavior`]'s batched query — the gap scan's
/// vectorizable half: per candidate, the signed longitudinal offset from
/// the querying vehicle plus the lead gap (`(dx − L).max(0)`) and rear gap
/// (`(−dx − L).max(0)`), exactly the arithmetic [`views_from_scan`] runs
/// per neighbor. The order-sensitive half — nearest-per-lane selection,
/// where ties keep the first candidate — stays a scalar fold over these
/// columns in canonical candidate order, so batched ≡ scalar bitwise.
pub fn gap_kernel(
    xs: &[f64],
    my_x: f64,
    vehicle_length: f64,
    dx: &mut Vec<f64>,
    lead: &mut Vec<f64>,
    rear: &mut Vec<f64>,
) {
    let n = xs.len();
    dx.clear();
    dx.resize(n, 0.0);
    lead.clear();
    lead.resize(n, 0.0);
    rear.clear();
    rear.resize(n, 0.0);
    // Lockstep iterators so the vectorizer sees no bounds checks.
    let it = xs.iter().zip(dx.iter_mut().zip(lead.iter_mut()).zip(rear.iter_mut()));
    for (&x, ((dxi, leadi), reari)) in it {
        let d = x - my_x;
        *dxi = d;
        *leadi = (d - vehicle_length).max(0.0);
        *reari = (-d - vehicle_length).max(0.0);
    }
}

/// The traffic model as a BRACE behavior.
#[derive(Debug, Clone)]
pub struct TrafficBehavior {
    params: TrafficParams,
    schema: AgentSchema,
}

impl TrafficBehavior {
    pub fn new(params: TrafficParams) -> Self {
        let schema = AgentSchema::builder("Vehicle")
            .state("vel")
            .state("desired")
            .state("changes")
            .effect("acc", Combinator::Sum)
            .effect("lane_delta", Combinator::Sum)
            // Visibility = lookahead; reachability = max movement in one
            // tick (longitudinal) — lane moves are 1 unit of y, far below.
            .visibility(params.lookahead)
            .reachability((params.max_speed * params.dt).max(1.0))
            .build()
            .expect("static schema is valid");
        TrafficBehavior { params, schema }
    }

    pub fn params(&self) -> &TrafficParams {
        &self.params
    }

    /// Seed an initial population: vehicles placed by a deterministic
    /// low-discrepancy scatter at the configured density.
    pub fn population(&self, seed: u64) -> Vec<Agent> {
        let p = &self.params;
        let mut rng = DetRng::seed_from_u64(seed).stream(0x7247);
        let per_lane = (p.segment * p.density).floor() as usize;
        let mut agents = Vec::with_capacity(per_lane * p.lanes);
        let mut id = 0u64;
        for lane in 0..p.lanes {
            for k in 0..per_lane {
                // Even spacing with jitter, never closer than 2 vehicle
                // lengths to keep the start-up transient mild.
                let spacing = p.segment / per_lane as f64;
                let x = (k as f64 + rng.range(0.25, 0.75)) * spacing;
                let desired = p.desired_speed * rng.range(0.8, 1.2);
                let mut a = Agent::new(AgentId::new(id), Vec2::new(x, lane as f64), &self.schema);
                a.state[state::VEL as usize] = desired * rng.range(0.7, 1.0);
                a.state[state::DESIRED as usize] = desired;
                agents.push(a);
                id += 1;
            }
        }
        agents
    }
}

impl Behavior for TrafficBehavior {
    fn schema(&self) -> &AgentSchema {
        &self.schema
    }

    fn probe(&self) -> brace_core::behavior::NeighborProbe {
        match self.params.knn {
            Some(k) => brace_core::behavior::NeighborProbe::Nearest(k),
            None => brace_core::behavior::NeighborProbe::Range,
        }
    }

    fn batch_profitable(&self) -> bool {
        brace_core::behavior::batch_engaged(GAP_KERNEL_COST, self.params.batch_engagement)
    }

    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        let p = &self.params;
        let my_pos = me.pos();
        let lane = my_pos.y.round() as usize;
        let vel = me.state(state::VEL);
        let desired = me.state(state::DESIRED);
        let views = views_from_scan(
            p,
            my_pos.x,
            lane,
            nbrs.iter().map(|n| {
                let pos = n.agent.pos();
                (pos.x, pos.y.round() as usize, n.agent.state(state::VEL))
            }),
        );
        let left = (lane > 0).then_some(&views[0]);
        let right = (lane + 1 < p.lanes).then_some(&views[2]);
        let (acc, delta) = drive(p, lane, vel, desired, [left, Some(&views[1]), right], rng);
        eff.local(FieldId::new(effect::ACC), acc);
        eff.local(FieldId::new(effect::LANE), delta as f64);
    }

    /// Batched query: gather positions + velocities, run [`gap_kernel`]
    /// over the candidate columns, then fold the lane views in candidate
    /// order — the same selection, over lane-computed gaps, as
    /// [`views_from_scan`] — and drive.
    // The fold walks five parallel columns by index; iterating any single
    // one (clippy's suggestion) would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        rng: &mut DetRng,
    ) {
        let p = &self.params;
        let my_pos = me.pos();
        let lane = my_pos.y.round() as usize;
        let vel = me.state(state::VEL);
        let desired = me.state(state::DESIRED);
        let g = batch.gather(&[state::VEL]);
        let (acc, delta) = with_lane_scratch(|s| {
            gap_kernel(g.xs, my_pos.x, p.vehicle_length, &mut s.a, &mut s.b, &mut s.c);
            let vels = g.state(0);
            let mut views = [LaneView::open(p), LaneView::open(p), LaneView::open(p)];
            for i in 0..g.len() {
                if g.rows[i] == g.me {
                    continue;
                }
                let lane_delta = (g.ys[i].round() as usize) as i64 - lane as i64;
                fold_candidate(&mut views, lane_delta, s.a[i], s.b[i], s.c[i], vels[i]);
            }
            let left = (lane > 0).then_some(&views[0]);
            let right = (lane + 1 < p.lanes).then_some(&views[2]);
            drive(p, lane, vel, desired, [left, Some(&views[1]), right], rng)
        });
        eff.local(FieldId::new(effect::ACC), acc);
        eff.local(FieldId::new(effect::LANE), delta as f64);
    }

    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let p = &self.params;
        let acc = me.effect(FieldId::new(effect::ACC));
        let delta = me.effect(FieldId::new(effect::LANE));
        let vel = (me.state[state::VEL as usize] + acc * p.dt).clamp(0.0, p.max_speed);
        me.state[state::VEL as usize] = vel;
        if delta != 0.0 {
            me.pos.y = (me.pos.y + delta).clamp(0.0, (p.lanes - 1) as f64);
            me.state[state::CHANGES as usize] += 1.0;
        }
        me.pos.x += vel * p.dt;
        // Constant upstream traffic: a vehicle leaving downstream is
        // replaced by a fresh one entering upstream in the same lane.
        if me.pos.x > p.segment {
            me.alive = false;
            let desired = p.desired_speed * ctx.rng.range(0.8, 1.2);
            let mut state = vec![0.0; 3];
            state[state::VEL as usize] = desired * 0.9;
            state[state::DESIRED as usize] = desired;
            let entry_x = ctx.rng.range(0.0, 5.0);
            ctx.spawn(Vec2::new(entry_x, me.pos.y), state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gap scan's cost sits below the shared engagement threshold, so
    /// the scalar path stays the default; `Some(true)` pins the kernel on.
    #[test]
    fn batch_engagement_follows_the_shared_cost_rule() {
        use brace_core::behavior::{batch_engaged, Behavior};
        assert!(!batch_engaged(GAP_KERNEL_COST, None));
        assert!(!TrafficBehavior::new(TrafficParams::default()).batch_profitable());
        let on = TrafficParams { batch_engagement: Some(true), ..TrafficParams::default() };
        assert!(TrafficBehavior::new(on).batch_profitable());
    }

    use brace_core::Simulation;
    use brace_spatial::IndexKind;

    fn small_params() -> TrafficParams {
        TrafficParams { segment: 1000.0, lanes: 3, density: 0.03, ..TrafficParams::default() }
    }

    /// Pin the gap kernel's scalar-tail handling at candidate counts
    /// straddling the lane width (0, 1, L−1, L, L+1, 2L−1): every element
    /// must match `views_from_scan`'s per-neighbor arithmetic bit for bit.
    #[test]
    fn gap_kernel_tail_counts_match_scalar_definition() {
        const L: usize = brace_spatial::kernels::LANES;
        let (my_x, veh) = (100.0, 5.0);
        for n in [0, 1, L - 1, L, L + 1, 2 * L - 1] {
            // Mix of leads, rears, inside-vehicle-length and coincident.
            let xs: Vec<f64> = (0..n).map(|i| my_x + (i as f64 - 2.5) * 4.0).collect();
            let (mut dx, mut lead, mut rear) = (Vec::new(), Vec::new(), Vec::new());
            gap_kernel(&xs, my_x, veh, &mut dx, &mut lead, &mut rear);
            assert_eq!(dx.len(), n);
            for i in 0..n {
                let d = xs[i] - my_x;
                assert_eq!(dx[i].to_bits(), d.to_bits(), "count {n} element {i}");
                assert_eq!(lead[i].to_bits(), ((d - veh).max(0.0)).to_bits(), "count {n} element {i}");
                assert_eq!(rear[i].to_bits(), ((-d - veh).max(0.0)).to_bits(), "count {n} element {i}");
            }
        }
    }

    #[test]
    fn population_matches_density_and_lanes() {
        let b = TrafficBehavior::new(small_params());
        let pop = b.population(1);
        assert_eq!(pop.len(), 30 * 3);
        for a in &pop {
            assert!(a.pos.x >= 0.0 && a.pos.x <= 1000.0);
            let lane = a.pos.y.round();
            assert!((0.0..3.0).contains(&lane));
            assert!(a.state[state::VEL as usize] > 0.0);
        }
    }

    #[test]
    fn free_flow_accelerates_to_desired_speed() {
        let p = small_params();
        let view = LaneView::open(&p);
        let acc = car_following_accel(&p, 10.0, 25.0, &view);
        assert!(acc > 0.0);
        // At the desired speed, acceleration vanishes.
        let settled = car_following_accel(&p, 25.0, 25.0, &view);
        assert!(settled.abs() < 1e-9);
    }

    #[test]
    fn emergency_regime_brakes_hard() {
        let p = small_params();
        let view = LaneView { lead_gap: 2.0, lead_vel: 0.0, rear_gap: 100.0 };
        let acc = car_following_accel(&p, 20.0, 25.0, &view);
        assert_eq!(acc, -p.max_decel);
    }

    #[test]
    fn gm_regime_tracks_lead_speed() {
        let p = small_params();
        // Lead slower -> decelerate; lead faster -> accelerate.
        let slower = LaneView { lead_gap: 30.0, lead_vel: 15.0, rear_gap: 100.0 };
        let faster = LaneView { lead_gap: 30.0, lead_vel: 30.0, rear_gap: 100.0 };
        assert!(car_following_accel(&p, 20.0, 25.0, &slower) < 0.0);
        assert!(car_following_accel(&p, 20.0, 25.0, &faster) > 0.0);
    }

    #[test]
    fn gap_acceptance_blocks_unsafe_changes() {
        let p = small_params();
        let tight = LaneView { lead_gap: 3.0, lead_vel: 20.0, rear_gap: 50.0 };
        let safe = LaneView { lead_gap: 50.0, lead_vel: 20.0, rear_gap: 50.0 };
        assert!(!gap_acceptable(&p, &tight));
        assert!(gap_acceptable(&p, &safe));
    }

    #[test]
    fn drive_prefers_clearly_better_lane() {
        let p = small_params();
        let blocked = LaneView { lead_gap: 10.0, lead_vel: 5.0, rear_gap: 100.0 };
        let open = LaneView::open(&p);
        // Deterministically test the decision by forcing chance() -> true.
        let mut rng = DetRng::seed_from_u64(1);
        let mut changed = 0;
        for _ in 0..200 {
            let (_, delta) = drive(&p, 1, 20.0, 25.0, [Some(&open), Some(&blocked), Some(&blocked)], &mut rng);
            if delta == -1 {
                changed += 1;
            }
        }
        // change_probability = 0.6 -> roughly 120 of 200.
        assert!((80..=160).contains(&changed), "changed {changed}");
    }

    #[test]
    fn views_from_scan_finds_nearest_per_lane() {
        let p = small_params();
        let neighbors = vec![
            (120.0, 1, 20.0), // lead, current lane
            (150.0, 1, 22.0), // farther lead, must lose
            (80.0, 1, 18.0),  // rear, current lane
            (130.0, 0, 30.0), // lead, left lane
            (90.0, 2, 10.0),  // rear, right lane
            (300.0, 3, 10.0), // two lanes away: ignored
        ];
        let views = views_from_scan(&p, 100.0, 1, neighbors.into_iter());
        assert_eq!(views[1].lead_gap, 15.0);
        assert_eq!(views[1].lead_vel, 20.0);
        assert_eq!(views[1].rear_gap, 15.0);
        assert_eq!(views[0].lead_gap, 25.0);
        assert_eq!(views[2].rear_gap, 5.0);
    }

    #[test]
    fn simulation_runs_and_conserves_population() {
        let b = TrafficBehavior::new(small_params());
        let pop = b.population(2);
        let n = pop.len();
        let mut sim = Simulation::builder(b).agents(pop).seed(3).index(IndexKind::KdTree).build().unwrap();
        sim.run(50);
        // Exit + respawn keeps the population constant.
        assert_eq!(sim.agents().len(), n);
        for a in sim.agents() {
            assert!(a.pos.x >= 0.0 && a.pos.x <= 1000.0 + 36.0, "x = {}", a.pos.x);
            let v = a.state[state::VEL as usize];
            assert!((0.0..=36.0).contains(&v), "vel = {v}");
        }
    }

    #[test]
    fn vehicles_do_not_pile_up() {
        // After a settling period, no two same-lane vehicles should overlap
        // by more than a vehicle length (car-following keeps spacing).
        let b = TrafficBehavior::new(small_params());
        let pop = b.population(4);
        let mut sim = Simulation::builder(b).agents(pop).seed(5).build().unwrap();
        sim.run(100);
        let mut by_lane: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for a in sim.agents() {
            by_lane[a.pos.y.round() as usize].push(a.pos.x);
        }
        let mut collisions = 0;
        for lane in &mut by_lane {
            lane.sort_by(f64::total_cmp);
            collisions += lane.windows(2).filter(|w| w[1] - w[0] < 1.0).count();
        }
        let total: usize = by_lane.iter().map(|l| l.len()).sum();
        assert!(collisions < total / 20, "{collisions} near-collisions among {total} vehicles");
    }

    #[test]
    fn knn_probe_mode_runs_with_similar_dynamics() {
        // The k-NN probe changes which neighbors a driver inspects (her k
        // nearest instead of everyone in range); aggregate traffic should
        // stay in the same regime.
        let run = |knn: Option<usize>| {
            let b = TrafficBehavior::new(TrafficParams { knn, ..small_params() });
            let pop = b.population(6);
            let mut sim = Simulation::builder(b).agents(pop).seed(6).build().unwrap();
            sim.run(60);
            let vels: Vec<f64> = sim.agents().iter().map(|a| a.state[state::VEL as usize]).collect();
            vels.iter().sum::<f64>() / vels.len() as f64
        };
        let mean_range = run(None);
        let mean_knn = run(Some(12));
        assert!(mean_knn > 0.0 && mean_knn <= 36.0);
        let rel = (mean_range - mean_knn).abs() / mean_range;
        assert!(rel < 0.2, "regimes diverged: range {mean_range} vs knn {mean_knn}");
    }

    #[test]
    fn knn_probe_sees_at_most_k_neighbors() {
        use brace_core::behavior::NeighborProbe;
        let b = TrafficBehavior::new(TrafficParams { knn: Some(4), ..small_params() });
        assert_eq!(b.probe(), NeighborProbe::Nearest(4));
        let pop = b.population(7);
        let mut sim = Simulation::builder(b).agents(pop).seed(7).build().unwrap();
        sim.step();
        // neighbor_visits counts candidates per agent; with k = 4 the mean
        // must be bounded by k + 1 (self slot).
        let m = sim.metrics();
        let per_agent = m.neighbor_visits as f64 / m.agent_ticks as f64;
        assert!(per_agent <= 5.0, "visits/agent {per_agent} exceeds k+1");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let b = TrafficBehavior::new(small_params());
            let pop = b.population(7);
            let mut sim = Simulation::builder(b).agents(pop).seed(7).build().unwrap();
            sim.run(20);
            sim.agents().iter().map(|a| (a.id, a.pos, a.state.clone())).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
