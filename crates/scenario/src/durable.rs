//! Durable runs: the registry surface promoted to crash-safe *jobs*.
//!
//! A [`DurableRunner`] owns a root directory of runs. [`start`] creates
//! `root/<run-id>/` and launches a cluster run whose every coordinated
//! checkpoint appends to the write-ahead manifest in that directory
//! (`manifest.brace`, fsynced, checksummed per record — see
//! `brace_mapreduce::manifest`). If the process dies — crash, SIGKILL,
//! power loss — [`resume`] reads the manifest back in a *fresh* process,
//! rebuilds the behavior from the recorded job line, restores the workers
//! from the newest valid on-disk checkpoint, replays the logged epoch
//! commands, and finishes the run **bit-identically** to the uninterrupted
//! execution (`tests/durable_resume.rs` proves this across a real
//! `SIGKILL`). [`list`] summarizes what is on disk.
//!
//! The job line in the manifest header (`scenario=… size=… conformance=…`)
//! plus the recorded seed fully identify the behavior, because scenario
//! builds are pure functions of `(size, seed)` — that is the
//! [`Scenario`](crate::Scenario) determinism contract doing durability
//! work.
//!
//! [`start`]: DurableRunner::start
//! [`resume`]: DurableRunner::resume
//! [`list`]: DurableRunner::list

use crate::jobline::JobSpec;
use crate::runner::DEFAULT_SEED;
use crate::{world_checksum, Registry, Scenario};
use brace_common::{BraceError, Result};
use brace_mapreduce::cluster::index_from_u8;
use brace_mapreduce::{manifest, ClusterConfig, ClusterSim, ClusterStats};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Everything [`DurableRunner::start`] needs to create a new run.
#[derive(Debug, Clone)]
pub struct DurableOpts {
    /// Registry name of the scenario to run.
    pub scenario: String,
    /// Run directory name under the root; defaults to `<scenario>-<seed>`.
    /// Starting a run whose manifest already exists is refused (resume it
    /// instead) — run ids are identities, not scratch names.
    pub run_id: Option<String>,
    /// Population size (`None` = the scenario default).
    pub size: Option<usize>,
    /// Use the scenario's reduced, exactly-distributable conformance form.
    pub conformance: bool,
    /// Master seed (behavior, population and worker RNGs derive from it).
    pub seed: u64,
    /// Cluster worker count.
    pub workers: usize,
    /// Total ticks the job runs for (recorded in the manifest header;
    /// resume finishes exactly the remainder).
    pub ticks: u64,
    /// Coordinated-checkpoint cadence in epochs (clamped to ≥ 1: a durable
    /// run without checkpoints could never be resumed).
    pub checkpoint_every: u64,
    /// On-disk checkpoint retention (newest K kept, older pruned).
    pub keep_checkpoints: usize,
    /// Results-neutral per-epoch throttle. Only the wall clock sees it —
    /// it exists so restart tests (and demos) can reliably catch a run
    /// mid-flight.
    pub epoch_sleep_ms: u64,
}

impl Default for DurableOpts {
    fn default() -> Self {
        DurableOpts {
            scenario: String::new(),
            run_id: None,
            size: None,
            conformance: false,
            seed: DEFAULT_SEED,
            workers: 2,
            ticks: 50,
            checkpoint_every: 1,
            keep_checkpoints: 4,
            epoch_sleep_ms: 0,
        }
    }
}

/// What a finished (or resumed-to-finish) durable run reports.
#[derive(Debug, Clone)]
pub struct DurableReport {
    /// The run directory name under the root.
    pub run_id: String,
    /// Scenario registry name.
    pub scenario: String,
    /// Total ticks at completion (fresh start and resume agree on this).
    pub ticks: u64,
    /// Tick the run was restored at (`0` for a fresh start).
    pub resumed_from: u64,
    /// Final live population.
    pub agents: usize,
    /// [`world_checksum`] of the final world, sorted by id — directly
    /// comparable to [`crate::RunReport::checksum`].
    pub checksum: u64,
    /// Cluster runtime counters (checkpoints, recoveries, retries,
    /// dead letters, …) for the portion this process executed.
    pub stats: ClusterStats,
    /// Wall time of the portion this process executed.
    pub wall_secs: f64,
}

/// One row of [`DurableRunner::list`].
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Run directory name.
    pub run_id: String,
    /// The recorded job line (`scenario=… size=… conformance=…`).
    pub job: String,
    /// Current worker count (after any mid-run membership changes).
    pub workers: u32,
    /// Ticks durably completed (epochs with an `EpochDone` record).
    pub completed_ticks: u64,
    /// The job's horizon from the header.
    pub total_ticks: u64,
    /// `Some((ticks, checksum))` once a `Complete` record is on disk.
    pub complete: Option<(u64, u64)>,
    /// Partitions abandoned after exhausting their retry budget.
    pub dead_letters: usize,
    /// The manifest tail was torn (crash mid-append); everything up to the
    /// tear is still trusted and resumable.
    pub truncated: bool,
}

// The job line written to / parsed from the manifest header lives in
// [`crate::jobline`] now, shared with the serve layer's result-cache
// keys. The byte format is unchanged — old manifests stay resumable.

/// Largest epoch length ≤ `preferred` dividing `ticks` (the coordination
/// cadence never affects results, so fitting is free).
fn fit_epoch(preferred: u64, ticks: u64) -> u64 {
    (1..=preferred.max(1)).rev().find(|&e| ticks.is_multiple_of(e)).unwrap_or(1)
}

/// Start / resume / list crash-safe runs under one root directory.
pub struct DurableRunner<'r> {
    registry: &'r Registry,
    root: PathBuf,
}

impl<'r> DurableRunner<'r> {
    pub fn new(registry: &'r Registry, root: impl Into<PathBuf>) -> Self {
        DurableRunner { registry, root: root.into() }
    }

    /// Create `root/<run-id>/` and run the job to completion, appending to
    /// the write-ahead manifest at every coordinated checkpoint. Refuses a
    /// run id whose manifest already exists.
    pub fn start(&self, opts: &DurableOpts) -> Result<DurableReport> {
        let (sim, run_id, scenario) = self.launch(opts)?;
        self.finish(scenario, run_id, sim, opts.ticks, opts.epoch_sleep_ms, 0)
    }

    /// Launch a fresh durable run without driving it — [`start`] minus the
    /// epoch loop. The split exists for tests that need to abandon a run
    /// mid-flight (simulating a crash) and resume it.
    ///
    /// [`start`]: DurableRunner::start
    fn launch(&self, opts: &DurableOpts) -> Result<(ClusterSim, String, &'r dyn Scenario)> {
        let scenario = self.registry.get_or_err(&opts.scenario)?;
        let mut setup =
            if opts.conformance { scenario.conformance(opts.seed)? } else { scenario.build(opts.size, opts.seed)? };
        if opts.ticks == 0 {
            return Err(BraceError::Config("a durable run needs a positive tick horizon".into()));
        }
        setup.epoch_len = fit_epoch(setup.epoch_len, opts.ticks);
        let run_id = opts.run_id.clone().unwrap_or_else(|| format!("{}-{}", opts.scenario, opts.seed));
        let cfg = ClusterConfig {
            workers: opts.workers.max(1),
            epoch_len: setup.epoch_len,
            index: setup.index,
            seed: opts.seed,
            space_x: setup.space_x,
            checkpoint_every: Some(opts.checkpoint_every.max(1)),
            keep_checkpoints: opts.keep_checkpoints.max(1),
            run_dir: Some(self.root.join(&run_id)),
            job: JobSpec { scenario: opts.scenario.clone(), size: opts.size, conformance: opts.conformance }.encode(),
            total_ticks: opts.ticks,
            ..ClusterConfig::default()
        };
        let sim = ClusterSim::new(setup.behavior, setup.population, cfg)?;
        Ok((sim, run_id, scenario))
    }

    /// Resume `root/<run-id>/` in this process: read the manifest, rebuild
    /// the behavior from the recorded job line and seed, restore from the
    /// newest valid checkpoint, replay the logged epoch commands, and run
    /// the remaining ticks. Bit-identical to never having crashed.
    pub fn resume(&self, run_id: &str, epoch_sleep_ms: u64) -> Result<DurableReport> {
        let dir = self.root.join(run_id);
        let m = manifest::read_manifest(&dir)?;
        if let Some((ticks, checksum)) = m.complete() {
            return Err(BraceError::Config(format!(
                "run `{run_id}` already completed {ticks} ticks (checksum {checksum:#018x}); nothing to resume"
            )));
        }
        let job = JobSpec::parse(&m.header.job)?;
        let scenario = self.registry.get_or_err(&job.scenario)?;
        let seed = m.header.seed;
        let setup = if job.conformance { scenario.conformance(seed)? } else { scenario.build(job.size, seed)? };
        let cfg = ClusterConfig {
            workers: m.header.workers as usize,
            epoch_len: m.header.epoch_len,
            index: index_from_u8(m.header.index),
            seed,
            space_x: m.header.space_x,
            load_balance: m.header.load_balance,
            checkpoint_every: (m.header.checkpoint_every > 0).then_some(m.header.checkpoint_every),
            keep_checkpoints: (m.header.keep_checkpoints as usize).max(1),
            run_dir: Some(dir),
            job: m.header.job.clone(),
            total_ticks: m.header.total_ticks,
            ..ClusterConfig::default()
        };
        let (sim, m) = ClusterSim::resume(setup.behavior, cfg)?;
        let resumed_from = sim.tick();
        let remaining = m.header.total_ticks.saturating_sub(resumed_from);
        self.finish(scenario, run_id.to_string(), sim, remaining, epoch_sleep_ms, resumed_from)
    }

    /// Drive `ticks` more ticks epoch by epoch, then collect, sanity-check,
    /// checksum, and append the `Complete` record.
    fn finish(
        &self,
        scenario: &dyn Scenario,
        run_id: String,
        mut sim: ClusterSim,
        ticks: u64,
        epoch_sleep_ms: u64,
        resumed_from: u64,
    ) -> Result<DurableReport> {
        let epoch_len = sim.epoch_len();
        if !ticks.is_multiple_of(epoch_len) {
            return Err(BraceError::Config(format!(
                "{ticks} remaining ticks is not a multiple of the recorded epoch length {epoch_len}"
            )));
        }
        let t0 = Instant::now();
        for _ in 0..ticks / epoch_len {
            sim.run_epochs(1)?;
            if epoch_sleep_ms > 0 {
                std::thread::sleep(Duration::from_millis(epoch_sleep_ms));
            }
        }
        let world = sim.collect_agents()?;
        scenario.check(&world)?;
        let checksum = world_checksum(&world);
        sim.record_complete(sim.tick(), checksum)?;
        Ok(DurableReport {
            run_id,
            scenario: scenario.name().to_string(),
            ticks: sim.tick(),
            resumed_from,
            agents: world.len(),
            checksum,
            stats: sim.stats(),
            wall_secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// Summaries of every run under the root, sorted by run id. Unreadable
    /// manifests are skipped (a run directory is only as good as its
    /// manifest).
    pub fn list(&self) -> Vec<RunSummary> {
        manifest::list_runs(&self.root)
            .into_iter()
            .filter_map(|run_id| {
                let m = manifest::read_manifest(&self.root.join(&run_id)).ok()?;
                Some(RunSummary {
                    run_id,
                    job: m.header.job.clone(),
                    workers: m.current_workers(),
                    completed_ticks: m.completed_epochs() * m.header.epoch_len,
                    total_ticks: m.header.total_ticks,
                    complete: m.complete(),
                    dead_letters: m.dead_letters().len(),
                    truncated: m.truncated,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("brace-durable-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn epidemic_opts() -> DurableOpts {
        DurableOpts { scenario: "epidemic".into(), conformance: true, workers: 2, ticks: 20, ..DurableOpts::default() }
    }

    #[test]
    fn job_line_round_trips() {
        // The shared jobline module owns the format; this pins that durable
        // manifests keep round-tripping through it.
        for (size, conformance) in [(None, true), (Some(123), false), (None, false)] {
            let job = JobSpec { scenario: "fish".into(), size, conformance };
            assert_eq!(JobSpec::parse(&job.encode()).unwrap(), job);
        }
        assert!(JobSpec::parse("size=3").is_err(), "a job line without a scenario must be rejected");
        assert!(JobSpec::parse("scenario=fish size=many").is_err());
        // Unknown keys from a newer writer are skipped, not fatal.
        assert!(JobSpec::parse("scenario=fish shiny=new").is_ok());
    }

    #[test]
    fn start_completes_and_lists_and_refuses_double_start() {
        let root = temp_root("start");
        let registry = Registry::builtin();
        let runner = DurableRunner::new(&registry, &root);
        let report = runner.start(&epidemic_opts()).unwrap();
        assert_eq!(report.ticks, 20);
        assert_eq!(report.resumed_from, 0);
        assert!(report.agents > 0);

        let runs = runner.list();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].run_id, report.run_id);
        assert_eq!(runs[0].complete, Some((20, report.checksum)));
        assert_eq!(runs[0].completed_ticks, 20);
        assert!(!runs[0].truncated);

        // Same run id again: the manifest already exists — identity, not scratch.
        let err = runner.start(&epidemic_opts()).unwrap_err();
        assert!(err.to_string().contains("manifest"), "{err}");
        // And resuming a complete run is an explicit error, not a silent no-op.
        let err = runner.resume(&report.run_id, 0).unwrap_err();
        assert!(err.to_string().contains("already completed"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The tentpole contract, in-process: abandon a run mid-flight (the
    /// simulated crash — the fabric is dropped without any shutdown
    /// courtesy), resume it from disk with a freshly rebuilt behavior, and
    /// land on the same bits as a never-interrupted run.
    #[test]
    fn abandoned_run_resumes_bit_identically() {
        let registry = Registry::builtin();

        let clean_root = temp_root("clean");
        let clean = DurableRunner::new(&registry, &clean_root).start(&epidemic_opts()).unwrap();

        let crash_root = temp_root("crash");
        let runner = DurableRunner::new(&registry, &crash_root);
        let (mut sim, run_id, _) = runner.launch(&epidemic_opts()).unwrap();
        sim.run_epochs(2).unwrap();
        drop(sim); // the "crash": no Complete record, no graceful anything

        let runs = runner.list();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].complete.is_none());
        // Two epochs of the fitted length 5 ran before the crash; both must
        // have durable EpochDone records.
        assert_eq!(runs[0].completed_ticks, 10);

        let resumed = runner.resume(&run_id, 0).unwrap();
        assert!(resumed.resumed_from > 0, "resume must restore mid-run, not restart");
        assert_eq!(resumed.ticks, clean.ticks);
        assert_eq!(resumed.checksum, clean.checksum, "resumed run diverged from the uninterrupted run");
        assert_eq!(resumed.agents, clean.agents);
        let _ = std::fs::remove_dir_all(&clean_root);
        let _ = std::fs::remove_dir_all(&crash_root);
    }

    #[test]
    fn fit_epoch_prefers_large_divisors() {
        assert_eq!(fit_epoch(5, 20), 5);
        assert_eq!(fit_epoch(5, 7), 1);
        assert_eq!(fit_epoch(5, 12), 4);
        assert_eq!(fit_epoch(0, 9), 1);
    }
}
