//! The in-tree scenario catalogue.
//!
//! Every workload this repo ships, behind one trait: the paper's evaluation
//! suite (fish / traffic / predator, hand-coded), the three BRASIL scripts
//! (compiled through the `brasil` pipeline — the predator one through
//! automatic effect inversion), and the two registry-era scenarios proving
//! the surface generalizes (an SIR epidemic with a non-local ⊕-effect, and
//! flocking through a static obstacle field).
//!
//! Conformance configurations: the registry suite requires every
//! scenario's [`Scenario::conformance`] setup to be **exactly
//! distributable** (cluster ≡ single-node, bitwise). Spawning is exactly
//! distributable since the runtime started assigning spawn ids in global
//! `(parent id, ordinal)` order, so scenarios that create agents mid-run
//! (traffic's wrapping respawns, the predator's births) just shrink like
//! everyone else. The one remaining substitution:
//!
//! * `predator` — the hand-inverted local form (`nonlocal: false`),
//!   because bite damages are float sums whose cross-partition ⊕ order is
//!   not associative. Spawning stays **on** at its default rate.
//!
//! Index choice no longer interacts with exact distributability: the
//! uniform grid's canonical range emission is globally **ascending by
//! payload** (a payload merge across the overlapping buckets), which on an
//! id-ordered single-node pool is exactly the id-sorted order a worker's
//! swap-mutated pool canonicalizes to. Order-sensitive float-sum models
//! are therefore exactly distributable on the grid, and every
//! [`Scenario::conformance`] form certifies the grid — the index that
//! historically *couldn't* carry them (its emission used to be
//! bucket-major) and the cheapest canonical index (no per-probe candidate
//! sort on either backend). Default `build` forms use the KD-tree across
//! the catalogue: the paper's index for the fish-style workloads, and —
//! since the hotspot-erosion fix — also for traffic and the epidemic,
//! whose jams and infection clusters concentrate agents into a few grid
//! buckets and erode the grid's constant-density advantage (the bench
//! hotspot rows quantify the delta). The index is never semantics, so the
//! flip moves no checksum; KD-tree cross-backend equivalence stays pinned
//! by the golden cluster tests and the distributed-equivalence property
//! suite, while every conformance form still certifies the grid.

use crate::{Scenario, ScenarioSetup};
use brace_common::{AgentId, DetRng, Result, Vec2};
use brace_core::{Agent, AgentSchema, Behavior};
use brace_models::{epidemic, flock_obstacles, predator, scripts};
use brace_models::{
    EpidemicBehavior, EpidemicParams, FishBehavior, FishParams, FlockObstaclesBehavior, FlockObstaclesParams,
    PredatorBehavior, PredatorParams, TrafficBehavior, TrafficParams,
};
use brace_spatial::IndexKind;
use std::sync::Arc;

/// Population size of the default [`Scenario::conformance`] configuration:
/// big enough that a 2-worker split has real boundary traffic, small enough
/// that the full registry × both backends suite stays CI-cheap.
pub const CONFORMANCE_POPULATION: usize = 300;

/// Default ticks-per-epoch for every builtin (divides the conformance
/// horizon and the CI smoke horizon).
const EPOCH_LEN: u64 = 5;

/// The shared conformance form of the scenarios whose `build` defaults to
/// the KD-tree: the default build, shrunk to [`CONFORMANCE_POPULATION`],
/// running on the uniform grid. The grid's ascending-payload emission makes
/// it the canonical conformance index (see the module docs); the bits are
/// identical to the KD-tree's on a single node (the executor sorts the
/// KD-tree's candidates into the very same ascending order), so flipping
/// the conformance index moved no golden checksum.
fn grid_conformance(scenario: &dyn Scenario, seed: u64) -> Result<ScenarioSetup> {
    let mut setup = scenario.build(Some(CONFORMANCE_POPULATION), seed)?;
    setup.index = IndexKind::Grid;
    Ok(setup)
}

/// All builtin scenarios, in catalogue order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Fish),
        Box::new(Traffic),
        Box::new(Predator),
        Box::new(BrasilFish { optimize: true }),
        Box::new(BrasilPredator { optimize: true }),
        Box::new(BrasilCar { optimize: true }),
        Box::new(Epidemic),
        Box::new(FlockObstacles),
    ]
}

/// An *unregistered* twin of a registered BRASIL scenario with the
/// optimizer pipeline disabled — same name, same population, same index —
/// for A/B conformance (optimized ≡ unoptimized must be bit-identical) and
/// bench speedup rows. The predator twin still inverts (inversion changes
/// float ⊕ order, so both sides of any comparison must share it); only the
/// always-safe passes differ.
pub fn brasil_unoptimized(name: &str) -> Option<Box<dyn Scenario>> {
    match name {
        "brasil-fish" => Some(Box::new(BrasilFish { optimize: false })),
        "brasil-predator" => Some(Box::new(BrasilPredator { optimize: false })),
        "brasil-car" => Some(Box::new(BrasilCar { optimize: false })),
        _ => None,
    }
}

fn no_nan(world: &[Agent]) -> Result<()> {
    for a in world {
        if a.pos.is_nan() || a.state.iter().any(|s| s.is_nan()) {
            return Err(brace_common::BraceError::Config(format!("agent {} has NaN state", a.id)));
        }
    }
    Ok(())
}

fn unique_ids(world: &[Agent]) -> Result<()> {
    let mut ids: Vec<u64> = world.iter().map(|a| a.id.raw()).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    if ids.len() != before {
        return Err(brace_common::BraceError::Config("duplicate agent ids".into()));
    }
    Ok(())
}

// ---- the paper's evaluation suite ----------------------------------------

/// Couzin fish school (hand-coded), constant density at every scale.
struct Fish;

impl Fish {
    fn params(n: usize) -> FishParams {
        // Constant density (as in Figure 4): the school radius grows with
        // the population so per-probe neighborhood size stays
        // scale-independent.
        FishParams { school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(), ..FishParams::default() }
    }
}

impl Scenario for Fish {
    fn name(&self) -> &'static str {
        "fish"
    }
    fn description(&self) -> &'static str {
        "Couzin fish school: repulsion/attraction/alignment with informed leaders (local effects)"
    }
    fn default_population(&self) -> usize {
        2_000
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = FishBehavior::new(Self::params(n));
        let r = behavior.params().school_radius;
        let population = behavior.population(n, seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (-r, r),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        for a in world {
            let h = Vec2::new(a.state[0], a.state[1]);
            if (h.norm() - 1.0).abs() > 1e-6 {
                return Err(brace_common::BraceError::Config(format!(
                    "fish {} heading norm {} is not unit",
                    a.id,
                    h.norm()
                )));
            }
        }
        Ok(())
    }
}

/// MITSIM-style traffic (hand-coded), segment length scaled to population.
struct Traffic;

impl Scenario for Traffic {
    fn name(&self) -> &'static str {
        "traffic"
    }
    fn description(&self) -> &'static str {
        "MITSIM-style highway: lane selection, gap acceptance, car following (local effects)"
    }
    fn default_population(&self) -> usize {
        2_000
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let defaults = TrafficParams::default();
        let n = size.unwrap_or(self.default_population());
        // population = floor(segment × density) × lanes ⇒ pick segment ≈ n.
        let segment = (n as f64 / (defaults.density * defaults.lanes as f64)).max(100.0);
        let behavior = TrafficBehavior::new(TrafficParams { segment, ..defaults });
        let population = behavior.population(seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            // KD-tree since the hotspot-erosion fix: traffic jams pile
            // vehicles into a handful of grid buckets, so the grid's probe
            // cost degrades toward a scan exactly when the workload gets
            // interesting. The KD-tree adapts its cuts to the jam.
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, segment),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        // The full default form, shrunk, on the grid like every conformance
        // form. Vehicles that wrap past the segment end respawn via
        // `ctx.spawn`, and spawn ids come from the global
        // `(parent id, ordinal)` order — identical on every backend — so
        // the wrapping path is part of what conformance pins.
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        let max = TrafficParams::default().max_speed;
        for a in world {
            let v = a.state[0];
            if !(0.0..=max).contains(&v) {
                return Err(brace_common::BraceError::Config(format!("vehicle {} speed {v} out of [0, {max}]", a.id)));
            }
        }
        Ok(())
    }
}

/// Artificial-society predator simulation (hand-coded, non-local bites).
struct Predator;

impl Predator {
    fn side(n: usize) -> f64 {
        // The paper's 200-fish world is a 30 × 30 square; keep that density.
        (n as f64 / (200.0 / 900.0)).sqrt()
    }
}

impl Scenario for Predator {
    fn name(&self) -> &'static str {
        "predator"
    }
    fn description(&self) -> &'static str {
        "Predator fish: non-local bite effects, spawn/death equilibrium (Figure 5 workload)"
    }
    fn default_population(&self) -> usize {
        1_500
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let side = Self::side(n);
        let behavior = PredatorBehavior::new(PredatorParams::default());
        let population = behavior.population(n, side, seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, side),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        // Exactly distributable form: victims *pull* hurt (the
        // hand-inverted local assignment, so no cross-partition float ⊕
        // re-association). Spawning runs at its default rate — spawn ids
        // are globally ordered by `(parent id, ordinal)`, so births,
        // deaths, movement and the whole query/update machinery are all
        // under the bit-identity contract. Runs on the grid like every
        // conformance form (see `grid_conformance`).
        let n = CONFORMANCE_POPULATION;
        let side = Self::side(n);
        let behavior = PredatorBehavior::new(PredatorParams { nonlocal: false, ..PredatorParams::default() });
        let population = behavior.population(n, side, seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::Grid,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, side),
        })
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        unique_ids(world)?;
        for a in world {
            if a.state[predator::state::SIZE as usize] <= 0.0 {
                return Err(brace_common::BraceError::Config(format!("predator {} has non-positive size", a.id)));
            }
        }
        Ok(())
    }
}

// ---- the BRASIL scripts ---------------------------------------------------

/// Deterministic scatter over a density-normalized square (the BRASIL
/// scripts' convention: state fields start at 0 unless set below).
fn brasil_population(schema: &AgentSchema, n: usize, seed: u64, side: f64) -> Vec<Agent> {
    let mut rng = DetRng::seed_from_u64(seed).stream(0xB7A5);
    (0..n)
        .map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, side), rng.range(0.0, side)), schema))
        .collect()
}

/// The runnable BRASIL fish school, compiled end to end.
struct BrasilFish {
    optimize: bool,
}

impl Scenario for BrasilFish {
    fn name(&self) -> &'static str {
        "brasil-fish"
    }
    fn description(&self) -> &'static str {
        "BRASIL fish-school script compiled through the full pipeline (local effects)"
    }
    fn default_population(&self) -> usize {
        500
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = scripts::fish_school_opt(self.optimize)?;
        let side = (n as f64 * 2.0).sqrt().max(1.0);
        let population = brasil_population(behavior.schema(), n, seed, side);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, side),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        for a in world {
            // The script clamps both velocity components to [−1, 1].
            if a.state[0].abs() > 1.0 + 1e-9 || a.state[1].abs() > 1.0 + 1e-9 {
                return Err(brace_common::BraceError::Config(format!("fish {} velocity escaped the clamp", a.id)));
            }
        }
        Ok(())
    }
}

/// The Figure 5 predator script, automatically inverted to local form.
struct BrasilPredator {
    optimize: bool,
}

impl Scenario for BrasilPredator {
    fn name(&self) -> &'static str {
        "brasil-predator"
    }
    fn description(&self) -> &'static str {
        "BRASIL predator script with automatic effect inversion (compiled non-local → local)"
    }
    fn default_population(&self) -> usize {
        500
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        // The inverted (local) form: the pipeline's Theorem 2/3 rewrite —
        // and, downstream, exactly distributable float aggregation (each
        // victim sums its own damages in canonical candidate order).
        let behavior = scripts::predator_opt(true, self.optimize)?;
        let side = (n as f64 * 2.0).sqrt().max(1.0);
        let mut population = brasil_population(behavior.schema(), n, seed, side);
        let mut rng = DetRng::seed_from_u64(seed).stream(0x512E);
        for a in &mut population {
            a.state[0] = rng.range(0.5, 1.5); // size
        }
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, side),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)
    }
}

/// The quickstart car-following script.
struct BrasilCar {
    optimize: bool,
}

impl Scenario for BrasilCar {
    fn name(&self) -> &'static str {
        "brasil-car"
    }
    fn description(&self) -> &'static str {
        "BRASIL car-following script: pressure from leaders on a one-lane road (local effects)"
    }
    fn default_population(&self) -> usize {
        200
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = scripts::car_following_opt(self.optimize)?;
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(seed).stream(0xCA12);
        let population: Vec<Agent> = (0..n)
            .map(|i| {
                let x = i as f64 * 30.0 + rng.range(0.0, 10.0);
                let mut a = Agent::new(AgentId::new(i as u64), Vec2::new(x, 0.0), &schema);
                a.state[0] = rng.range(15.0, 25.0); // vel
                a
            })
            .collect();
        let extent = n as f64 * 30.0 + 10.0;
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, extent),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        for a in world {
            if !(0.0..=36.0).contains(&a.state[0]) {
                return Err(brace_common::BraceError::Config(format!("car {} speed escaped the clamp", a.id)));
            }
        }
        Ok(())
    }
}

// ---- registry-era scenarios ----------------------------------------------

/// SIR epidemic with infection as a non-local, exactly-associative ⊕.
struct Epidemic;

impl Scenario for Epidemic {
    fn name(&self) -> &'static str {
        "epidemic"
    }
    fn description(&self) -> &'static str {
        "SIR epidemic on a plane: infection as a non-local integer ⊕-effect (exactly distributable)"
    }
    fn default_population(&self) -> usize {
        2_000
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = EpidemicBehavior::new(EpidemicParams::default());
        let side = behavior.side(n);
        let population = behavior.population(n, seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            // KD-tree since the hotspot-erosion fix: infection clusters are
            // hotspots by construction, and dense buckets erode the grid's
            // constant-density probe bound (see the bench hotspot rows).
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, side),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        let params = EpidemicParams::default();
        let mut touched = 0usize;
        for a in world {
            let s = a.state[epidemic::state::STATUS as usize];
            if s != epidemic::status::SUSCEPTIBLE
                && s != epidemic::status::INFECTIOUS
                && s != epidemic::status::RECOVERED
            {
                return Err(brace_common::BraceError::Config(format!("agent {} has invalid status {s}", a.id)));
            }
            if s != epidemic::status::SUSCEPTIBLE {
                touched += 1;
            }
        }
        // Status never moves backwards, so the index cases are always
        // still infectious-or-recovered.
        if touched < params.seeds.min(world.len()) {
            return Err(brace_common::BraceError::Config(format!(
                "only {touched} agents ever infected; the {} index cases cannot have healed",
                params.seeds
            )));
        }
        Ok(())
    }
}

/// Zonal flocking through a static obstacle field.
struct FlockObstacles;

impl Scenario for FlockObstacles {
    fn name(&self) -> &'static str {
        "flock-obstacles"
    }
    fn description(&self) -> &'static str {
        "Zonal flock steering around a deterministic static obstacle field (local effects)"
    }
    fn default_population(&self) -> usize {
        1_500
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let params = FlockObstaclesParams::default();
        let side = params.side;
        let behavior = FlockObstaclesBehavior::new(params);
        let population = behavior.population(n, seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: EPOCH_LEN,
            space_x: (0.0, side),
        })
    }
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        grid_conformance(self, seed)
    }
    fn check(&self, world: &[Agent]) -> Result<()> {
        no_nan(world)?;
        let geometry = FlockObstaclesBehavior::new(FlockObstaclesParams::default());
        for a in world {
            if geometry.inside_obstacle(a.pos) {
                return Err(brace_common::BraceError::Config(format!("bird {} is inside an obstacle", a.id)));
            }
            let h =
                Vec2::new(a.state[flock_obstacles::state::HX as usize], a.state[flock_obstacles::state::HY as usize]);
            if (h.norm() - 1.0).abs() > 1e-6 {
                return Err(brace_common::BraceError::Config(format!("bird {} heading is not unit", a.id)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, Runner};

    /// Every builtin builds at a small size, runs a few ticks single-node,
    /// and passes its own sanity check.
    #[test]
    fn every_builtin_builds_runs_and_checks() {
        let registry = Registry::builtin();
        for scenario in registry.iter() {
            let report = Runner::new(scenario)
                .population(120)
                .run(3)
                .unwrap_or_else(|e| panic!("scenario `{}` failed: {e}", scenario.name()));
            assert!(report.agents > 0, "scenario `{}` emptied out", scenario.name());
            assert_eq!(report.ticks, 3);
        }
    }

    /// Builds are pure functions of (size, seed).
    #[test]
    fn builds_are_deterministic() {
        let registry = Registry::builtin();
        for scenario in registry.iter() {
            let a = scenario.build(Some(80), 7).unwrap();
            let b = scenario.build(Some(80), 7).unwrap();
            assert_eq!(a.population, b.population, "scenario `{}` population not deterministic", scenario.name());
            assert_eq!(a.index, b.index);
            assert_eq!(a.space_x, b.space_x);
            let c = scenario.build(Some(80), 8).unwrap();
            assert_ne!(a.population, c.population, "scenario `{}` ignores the seed", scenario.name());
        }
    }

    /// The conformance setups honor their contract locally: populations are
    /// modest and every one runs clean on a single node.
    #[test]
    fn conformance_setups_run_single_node() {
        let registry = Registry::builtin();
        for scenario in registry.iter() {
            let report = Runner::new(scenario)
                .conformance()
                .run(5)
                .unwrap_or_else(|e| panic!("scenario `{}` conformance failed: {e}", scenario.name()));
            assert!(report.agents > 0);
            assert!(report.agents <= 2 * CONFORMANCE_POPULATION, "conformance setup of `{}` too big", scenario.name());
        }
    }
}
