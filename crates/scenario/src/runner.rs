//! The backend-erased driver: one [`Runner`] facade over the single-node
//! executor and the distributed cluster, with per-tick [`Observer`] hooks.
//!
//! Before this layer, single-node code used `brace_core::Simulation`
//! (monomorphized, `run_measured`, `agents()`) while distributed code used
//! `brace_mapreduce::ClusterSim` (dyn-based, epoch-grained, `run_ticks`,
//! `collect_agents()`), and every experiment hand-wired both. A [`Runner`]
//! erases the difference: pick a [`Backend`], launch a [`SimHandle`], run
//! ticks, collect the world. Metric sinks and snapshot policy hang off
//! [`Observer`]s instead of bespoke `run_measured`/`collect_agents` call
//! sites.
//!
//! Determinism contract: for a fixed scenario, seed and population, every
//! backend — any `parallelism`, any worker count — produces the same world
//! up to the one documented approximation (non-local float ⊕
//! re-association; spawn ids are globally ordered and exact). For a
//! scenario's
//! [`conformance`](crate::Scenario::conformance) configuration the
//! equivalence is **bit-exact**, which `tests/scenario_conformance.rs`
//! enforces for every registry entry.

use crate::{Scenario, ScenarioSetup};
use brace_common::{BraceError, Result};
use brace_core::metrics::{SimMetrics, TickMetrics};
use brace_core::{Agent, Behavior, Simulation};
use brace_mapreduce::{ClusterConfig, ClusterSim, ClusterStats};
use brace_spatial::IndexKind;
use std::sync::Arc;
use std::time::Instant;

/// Default master seed for runner-driven runs (the repo's golden seed).
pub const DEFAULT_SEED: u64 = 42;

/// Where a scenario executes. The variants carry only *placement* knobs;
/// simulation semantics (behavior, population, seed, bounds, index, epoch
/// length) come from the scenario and the [`Runner`], so switching backend
/// can never silently switch workloads.
#[derive(Debug, Clone)]
// A handful of these exist per process (they are launch configuration, not
// bulk data), so the size gap between the variants is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum Backend {
    /// The in-process sharded executor.
    SingleNode {
        /// Thread budget (`1` = serial, `0` = all cores). Never affects
        /// results.
        parallelism: usize,
    },
    /// The simulated shared-nothing cluster. The embedded
    /// [`ClusterConfig`]'s placement fields (`workers`, `load_balance`,
    /// `balancer`, `checkpoint_*`, `collocation`, `parallelism`,
    /// `distribution`, `fault`) are honored; its `seed`, `index`,
    /// `space_x` and `epoch_len` are overwritten from the scenario setup
    /// and the runner at launch.
    Cluster(ClusterConfig),
}

impl Backend {
    /// Serial single-node backend.
    pub fn single() -> Backend {
        Backend::SingleNode { parallelism: 1 }
    }

    /// Default cluster backend with `workers` workers.
    pub fn cluster(workers: usize) -> Backend {
        Backend::Cluster(ClusterConfig { workers, ..ClusterConfig::default() })
    }

    /// Parse a CLI backend spec: `single`, `cluster` (4 workers) or
    /// `cluster:N`.
    pub fn parse(s: &str) -> Result<Backend> {
        match s {
            "single" => Ok(Backend::single()),
            "cluster" => Ok(Backend::cluster(4)),
            _ => match s.strip_prefix("cluster:") {
                Some(n) => {
                    let workers: usize =
                        n.parse().map_err(|e| BraceError::Config(format!("backend `{s}`: bad worker count: {e}")))?;
                    Ok(Backend::cluster(workers))
                }
                None => Err(BraceError::Config(format!(
                    "unknown backend `{s}` (expected `single`, `cluster` or `cluster:N`)"
                ))),
            },
        }
    }

    /// Short display form (`single`, `cluster:4`).
    pub fn label(&self) -> String {
        match self {
            Backend::SingleNode { .. } => "single".to_string(),
            Backend::Cluster(cfg) => format!("cluster:{}", cfg.workers),
        }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::single()
    }
}

/// Per-tick progress delivered to [`Observer::on_tick`]. Single-node runs
/// report every tick; cluster runs report at epoch boundaries (the
/// master's coordination grain), with `tick` the total completed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Ticks completed so far.
    pub tick: u64,
    /// Live agents at this point.
    pub agents: usize,
}

/// Hooks driven by [`SimHandle::run`]: metric sinks, progress bars,
/// snapshot/checkpoint policies. All methods default to no-ops.
pub trait Observer: Send {
    /// Called after each completed tick (single node) or epoch (cluster).
    fn on_tick(&mut self, progress: &Progress) {
        let _ = progress;
    }

    /// Called with the executor's per-tick phase metrics, right before the
    /// matching [`Observer::on_tick`]. Single-node backend only: the
    /// cluster's per-worker phase accounting is aggregated in
    /// [`SimHandle::cluster_stats`], so cluster runs never call this.
    fn on_tick_metrics(&mut self, tm: &TickMetrics) {
        let _ = tm;
    }

    /// Called with a full world snapshot (sorted by agent id) whenever the
    /// runner's snapshot cadence fires — the backend-erased replacement for
    /// hand-rolled `collect_agents` loops. On the cluster backend snapshots
    /// land on the first epoch boundary at or after each cadence multiple.
    fn on_snapshot(&mut self, tick: u64, world: &[Agent]) {
        let _ = (tick, world);
    }
}

/// Builder for a backend-erased run of one scenario.
pub struct Runner<'s> {
    scenario: &'s dyn Scenario,
    backend: Backend,
    seed: u64,
    size: Option<usize>,
    index: Option<IndexKind>,
    epoch_len: Option<u64>,
    conformance: bool,
    snapshot_every: Option<u64>,
    observers: Vec<Box<dyn Observer>>,
}

impl<'s> Runner<'s> {
    pub fn new(scenario: &'s dyn Scenario) -> Runner<'s> {
        Runner {
            scenario,
            backend: Backend::default(),
            seed: DEFAULT_SEED,
            size: None,
            index: None,
            epoch_len: None,
            conformance: false,
            snapshot_every: None,
            observers: Vec::new(),
        }
    }

    /// Where to run (default: serial single node).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Master seed (default [`DEFAULT_SEED`]); drives the population
    /// generator and every per-agent RNG stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requested population size (default: the scenario's).
    pub fn population(mut self, size: usize) -> Self {
        self.size = Some(size);
        self
    }

    /// Override the scenario's default spatial index.
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.index = Some(kind);
        self
    }

    /// Override the scenario's default epoch length (cluster coordination
    /// cadence; never affects results).
    pub fn epoch_len(mut self, ticks: u64) -> Self {
        self.epoch_len = Some(ticks);
        self
    }

    /// Use the scenario's reduced, exactly-distributable
    /// [`conformance`](Scenario::conformance) configuration instead of
    /// [`build`](Scenario::build).
    pub fn conformance(mut self) -> Self {
        self.conformance = true;
        self
    }

    /// Deliver a sorted world snapshot to observers every `ticks` ticks.
    pub fn snapshot_every(mut self, ticks: u64) -> Self {
        self.snapshot_every = Some(ticks.max(1));
        self
    }

    /// Attach an observer (any number may be attached).
    pub fn observe(mut self, observer: Box<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    fn setup(&self) -> Result<ScenarioSetup> {
        let mut setup = if self.conformance {
            // The conformance configuration is a fixed point: population
            // and index are part of what its bit-exact cluster ≡
            // single-node contract certifies (see the `builtin` module
            // docs on the grid's bucket-major emission), so overriding
            // either would silently void the contract. Reject instead.
            if self.size.is_some() {
                return Err(BraceError::Config(
                    "population override conflicts with the conformance configuration \
                     (its size is part of the exactly-distributable contract); drop one"
                        .into(),
                ));
            }
            if self.index.is_some() {
                return Err(BraceError::Config(
                    "index override conflicts with the conformance configuration \
                     (its index choice is part of the exactly-distributable contract); drop one"
                        .into(),
                ));
            }
            self.scenario.conformance(self.seed)?
        } else {
            let mut setup = self.scenario.build(self.size, self.seed)?;
            if let Some(kind) = self.index {
                setup.index = kind;
            }
            setup
        };
        if let Some(e) = self.epoch_len {
            setup.epoch_len = e.max(1);
        }
        Ok(setup)
    }

    /// Launch the scenario on the configured backend.
    pub fn launch(self) -> Result<SimHandle> {
        let setup = self.setup()?;
        self.launch_with(setup)
    }

    /// Launch a **prebuilt** setup on the configured backend, skipping the
    /// scenario's `build`/`conformance` call. For callers that also
    /// inspect the setup (e.g. the bench harness reads the index and
    /// population size it is about to measure) and must not pay a second
    /// build — BRASIL scenarios compile their script per build. The setup
    /// should come from this runner's scenario and seed, or the eventual
    /// report's provenance is a lie; `size`/`index`/`conformance` set on
    /// the runner are ignored.
    pub fn launch_with(self, setup: ScenarioSetup) -> Result<SimHandle> {
        let inner = match self.backend {
            Backend::SingleNode { parallelism } => {
                let sim = Simulation::builder(setup.behavior)
                    .agents(setup.population)
                    .index(setup.index)
                    .seed(self.seed)
                    .parallelism(parallelism)
                    .build()?;
                Inner::Single(Box::new(sim))
            }
            Backend::Cluster(mut cfg) => {
                cfg.seed = self.seed;
                cfg.index = setup.index;
                cfg.space_x = setup.space_x;
                cfg.epoch_len = setup.epoch_len;
                Inner::Cluster(Box::new(ClusterSim::new(setup.behavior, setup.population, cfg)?))
            }
        };
        Ok(SimHandle { inner, observers: self.observers, snapshot_every: self.snapshot_every, snapshots_delivered: 0 })
    }

    /// One-shot convenience: launch, run `ticks`, collect, run the
    /// scenario's sanity [`check`](Scenario::check), and report. For
    /// cluster backends the epoch length is first fitted to `ticks` (the
    /// largest value ≤ the configured epoch length dividing `ticks` — the
    /// coordination cadence never affects results), so any tick count
    /// works on any backend.
    pub fn run(self, ticks: u64) -> Result<RunReport> {
        let scenario = self.scenario;
        let backend_label = self.backend.label();
        let mut setup = self.setup()?;
        if matches!(self.backend, Backend::Cluster(_)) && ticks > 0 {
            setup.epoch_len = (1..=setup.epoch_len.max(1)).rev().find(|&e| ticks.is_multiple_of(e)).unwrap_or(1);
        }
        let mut handle = self.launch_with(setup)?;
        let t0 = Instant::now();
        handle.run(ticks)?;
        let wall_secs = t0.elapsed().as_secs_f64();
        let world = handle.world()?;
        scenario.check(&world)?;
        let agent_ticks = handle.agent_ticks();
        Ok(RunReport {
            scenario: scenario.name().to_string(),
            backend: backend_label,
            ticks,
            agents: world.len(),
            checksum: crate::world_checksum(&world),
            wall_secs,
            agents_per_sec: if wall_secs > 0.0 { agent_ticks as f64 / wall_secs } else { 0.0 },
            world,
        })
    }
}

/// Outcome of [`Runner::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Backend label (`single`, `cluster:4`).
    pub backend: String,
    /// Ticks executed.
    pub ticks: u64,
    /// Final live population.
    pub agents: usize,
    /// [`crate::world_checksum`] of the final world (sorted by id).
    pub checksum: u64,
    /// Wall time of the run.
    pub wall_secs: f64,
    /// Agent-ticks per second of wall time.
    pub agents_per_sec: f64,
    /// The final world, sorted by agent id.
    pub world: Vec<Agent>,
}

enum Inner {
    Single(Box<Simulation<Arc<dyn Behavior>>>),
    Cluster(Box<ClusterSim>),
}

fn world_of(inner: &mut Inner) -> Result<Vec<Agent>> {
    match inner {
        Inner::Single(sim) => {
            let mut world = sim.agents();
            world.sort_by_key(|a| a.id);
            Ok(world)
        }
        Inner::Cluster(sim) => sim.collect_agents(),
    }
}

/// A launched simulation with the backend erased.
pub struct SimHandle {
    inner: Inner,
    observers: Vec<Box<dyn Observer>>,
    snapshot_every: Option<u64>,
    snapshots_delivered: u64,
}

impl SimHandle {
    /// Execute `ticks` ticks, driving observers as they complete. On the
    /// cluster backend `ticks` must be a multiple of the epoch length
    /// (use [`Runner::run`], which fits the epoch length automatically, or
    /// [`Runner::epoch_len`]).
    pub fn run(&mut self, ticks: u64) -> Result<()> {
        if let Inner::Cluster(sim) = &self.inner {
            let epoch_len = sim.epoch_len();
            if !ticks.is_multiple_of(epoch_len) {
                return Err(BraceError::Config(format!(
                    "{ticks} ticks is not a multiple of the cluster epoch length {epoch_len}; \
                     use Runner::run (auto-fits) or Runner::epoch_len"
                )));
            }
        }
        let mut done = 0u64;
        while done < ticks {
            let progress = match &mut self.inner {
                Inner::Single(sim) => {
                    let tm = sim.step();
                    done += 1;
                    for o in &mut self.observers {
                        o.on_tick_metrics(&tm);
                    }
                    Progress { tick: sim.tick(), agents: sim.pool().len() }
                }
                Inner::Cluster(sim) => {
                    sim.run_epochs(1)?;
                    done += sim.epoch_len();
                    let stats = sim.stats();
                    let agents = stats.agents_per_worker.last().map(|w| w.iter().sum()).unwrap_or(0);
                    Progress { tick: sim.tick(), agents }
                }
            };
            for o in &mut self.observers {
                o.on_tick(&progress);
            }
            Self::maybe_snapshot(
                &mut self.inner,
                &mut self.observers,
                self.snapshot_every,
                &mut self.snapshots_delivered,
            )?;
        }
        Ok(())
    }

    fn maybe_snapshot(
        inner: &mut Inner,
        observers: &mut [Box<dyn Observer>],
        every: Option<u64>,
        delivered: &mut u64,
    ) -> Result<()> {
        let Some(every) = every else { return Ok(()) };
        let tick = match inner {
            Inner::Single(sim) => sim.tick(),
            Inner::Cluster(sim) => sim.tick(),
        };
        if tick / every > *delivered {
            *delivered = tick / every;
            let world = world_of(inner)?;
            for o in observers.iter_mut() {
                o.on_snapshot(tick, &world);
            }
        }
        Ok(())
    }

    /// Completed simulation ticks.
    pub fn tick(&self) -> u64 {
        match &self.inner {
            Inner::Single(sim) => sim.tick(),
            Inner::Cluster(sim) => sim.tick(),
        }
    }

    /// The current world, sorted by agent id (cluster: a master-coordinated
    /// collection at the current epoch boundary).
    pub fn world(&mut self) -> Result<Vec<Agent>> {
        world_of(&mut self.inner)
    }

    /// [`crate::world_checksum`] of [`SimHandle::world`].
    pub fn checksum(&mut self) -> Result<u64> {
        Ok(crate::world_checksum(&self.world()?))
    }

    /// Agent-ticks executed so far.
    pub fn agent_ticks(&self) -> u64 {
        match &self.inner {
            Inner::Single(sim) => sim.metrics().agent_ticks,
            Inner::Cluster(sim) => sim.stats().agent_ticks,
        }
    }

    /// Single-node phase metrics (`None` on the cluster backend, whose
    /// accounting lives in [`SimHandle::cluster_stats`]).
    pub fn metrics(&self) -> Option<&SimMetrics> {
        match &self.inner {
            Inner::Single(sim) => Some(sim.metrics()),
            Inner::Cluster(_) => None,
        }
    }

    /// Discard accumulated single-node metrics (warm-up elimination); a
    /// no-op on the cluster backend.
    pub fn reset_metrics(&mut self) {
        if let Inner::Single(sim) = &mut self.inner {
            sim.reset_metrics();
        }
    }

    /// Cluster statistics (`None` on the single-node backend).
    pub fn cluster_stats(&self) -> Option<ClusterStats> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Cluster(sim) => Some(sim.stats()),
        }
    }

    /// Current cluster partition boundaries (`None` on single node).
    pub fn x_bounds(&self) -> Option<&[f64]> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Cluster(sim) => Some(sim.x_bounds()),
        }
    }

    /// Backend label (`single`, `cluster:N`).
    pub fn backend_label(&self) -> String {
        match &self.inner {
            Inner::Single(_) => "single".to_string(),
            Inner::Cluster(sim) => format!("cluster:{}", sim.x_bounds().len().saturating_sub(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn backend_parses_cli_specs() {
        assert!(matches!(Backend::parse("single").unwrap(), Backend::SingleNode { .. }));
        match Backend::parse("cluster:3").unwrap() {
            Backend::Cluster(cfg) => assert_eq!(cfg.workers, 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(Backend::parse("cluster").unwrap().label(), "cluster:4");
        assert!(Backend::parse("gpu").is_err());
        assert!(Backend::parse("cluster:x").is_err());
    }

    #[test]
    fn both_backends_run_through_one_facade() {
        let registry = Registry::builtin();
        let scenario = registry.get("flock-obstacles").unwrap();
        let single = Runner::new(scenario).conformance().run(10).unwrap();
        let cluster = Runner::new(scenario).conformance().backend(Backend::cluster(2)).run(10).unwrap();
        assert_eq!(single.ticks, 10);
        assert_eq!(cluster.ticks, 10);
        assert_eq!(single.checksum, cluster.checksum, "exactly-distributable scenario must bit-match");
        assert_eq!(single.agents, cluster.agents);
    }

    #[test]
    fn epoch_fitting_makes_any_tick_count_run_on_cluster() {
        let registry = Registry::builtin();
        let scenario = registry.get("epidemic").unwrap();
        // 7 is coprime with the default epoch length; Runner::run must fit.
        let report = Runner::new(scenario).conformance().backend(Backend::cluster(2)).run(7).unwrap();
        assert_eq!(report.ticks, 7);
    }

    #[test]
    fn conformance_rejects_population_and_index_overrides() {
        // The conformance setup's size and index are part of its bit-exact
        // contract; silently ignoring an override would let a CLI user
        // believe they ran something they didn't.
        let registry = Registry::builtin();
        let scenario = registry.get("fish").unwrap();
        let err = Runner::new(scenario).conformance().population(50).run(2).expect_err("must conflict");
        assert!(err.to_string().contains("population override"), "{err}");
        let err = Runner::new(scenario).conformance().index(IndexKind::Grid).run(2).expect_err("must conflict");
        assert!(err.to_string().contains("index override"), "{err}");
    }

    #[test]
    fn handle_rejects_unaligned_cluster_ticks() {
        let registry = Registry::builtin();
        let scenario = registry.get("epidemic").unwrap();
        let mut handle = Runner::new(scenario).conformance().backend(Backend::cluster(2)).launch().unwrap();
        let err = handle.run(7).expect_err("7 ticks over a 5-tick epoch must be rejected");
        assert!(err.to_string().contains("multiple"), "{err}");
    }

    struct CountingObserver {
        ticks: Arc<AtomicUsize>,
        snapshots: Arc<Mutex<Vec<(u64, usize)>>>,
    }

    impl Observer for CountingObserver {
        fn on_tick(&mut self, progress: &Progress) {
            assert!(progress.agents > 0);
            self.ticks.fetch_add(1, Ordering::Relaxed);
        }
        fn on_snapshot(&mut self, tick: u64, world: &[Agent]) {
            self.snapshots.lock().unwrap().push((tick, world.len()));
        }
    }

    #[test]
    fn observers_fire_per_tick_and_per_snapshot() {
        let registry = Registry::builtin();
        let scenario = registry.get("fish").unwrap();
        let ticks = Arc::new(AtomicUsize::new(0));
        let snapshots = Arc::new(Mutex::new(Vec::new()));
        let report = Runner::new(scenario)
            .population(60)
            .snapshot_every(4)
            .observe(Box::new(CountingObserver { ticks: ticks.clone(), snapshots: snapshots.clone() }))
            .run(10)
            .unwrap();
        assert_eq!(ticks.load(Ordering::Relaxed), 10, "single node observes every tick");
        let snaps = snapshots.lock().unwrap().clone();
        assert_eq!(snaps.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![4, 8]);
        assert!(snaps.iter().all(|&(_, n)| n == report.agents));
    }

    #[test]
    fn cluster_observers_fire_per_epoch() {
        let registry = Registry::builtin();
        let scenario = registry.get("fish").unwrap();
        let ticks = Arc::new(AtomicUsize::new(0));
        let snapshots = Arc::new(Mutex::new(Vec::new()));
        Runner::new(scenario)
            .population(60)
            .backend(Backend::cluster(2))
            .epoch_len(5)
            .snapshot_every(10)
            .observe(Box::new(CountingObserver { ticks: ticks.clone(), snapshots: snapshots.clone() }))
            .run(20)
            .unwrap();
        assert_eq!(ticks.load(Ordering::Relaxed), 4, "cluster observes at epoch grain");
        let snaps = snapshots.lock().unwrap().clone();
        assert_eq!(snaps.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn index_override_reaches_the_executor() {
        // Same scenario, two index kinds: results identical (the index is
        // never semantics), so the override is observable only through the
        // run succeeding — plus the checksum equality doubling as an
        // index-equivalence spot check.
        let registry = Registry::builtin();
        let scenario = registry.get("epidemic").unwrap();
        let kd = Runner::new(scenario).population(80).index(IndexKind::KdTree).run(6).unwrap();
        let grid = Runner::new(scenario).population(80).index(IndexKind::Grid).run(6).unwrap();
        assert_eq!(kd.checksum, grid.checksum);
    }
}
