//! # brace-scenario — the scenario registry and the backend-erased driver
//!
//! The paper's central promise is *"write the behavior once, run it at any
//! scale"*: the same simulation program executes on one node or on a
//! MapReduce cluster. The runtime half of that promise lives in
//! `brace_core` (the single-node executor) and `brace_mapreduce` (the
//! N-worker cluster, bit-identical to the executor); this crate is the API
//! half:
//!
//! * [`Scenario`] — what a *workload* is: a name, a behavior (hand-coded
//!   Rust or BRASIL-compiled), a deterministic seeded population generator,
//!   default bounds/index/epoch configuration, and post-run sanity checks.
//! * [`Registry`] — the named collection of scenarios. [`Registry::builtin`]
//!   carries every in-tree workload (the paper's fish / traffic / predator,
//!   the three BRASIL scripts, and the registry-era scenarios — an SIR
//!   epidemic and an obstacle-field flock); user code can
//!   [`register`](Registry::register) its own.
//! * [`Runner`] / [`SimHandle`] — the backend-erased driver: pick a
//!   [`Backend`] (`SingleNode` or `Cluster`), launch, run ticks, observe
//!   progress through [`Observer`] hooks, collect the world and its
//!   [`world_checksum`]. One facade, both engines, no per-backend call
//!   sites.
//! * [`DurableRunner`] — the same registry surface promoted to crash-safe
//!   *jobs*: start a run under a run directory (write-ahead manifest +
//!   fsynced checkpoints), resume it bit-identically after a process
//!   restart (`brace run --resume <run-id>`), and list what is on disk.
//!
//! The load-bearing invariant — enforced by the registry-driven conformance
//! suite in `tests/scenario_conformance.rs` — is that every registered
//! scenario's [`Scenario::conformance`] configuration produces
//! **bit-identical** worlds on both backends. Adding a scenario to the
//! registry therefore buys distributed execution, CLI exposure
//! (`brace run --scenario <name>`), bench coverage and the conformance
//! proof, all without touching any of those call sites.

pub mod builtin;
pub mod durable;
pub mod jobline;
pub mod runner;

pub use builtin::{brasil_unoptimized, CONFORMANCE_POPULATION};
pub use durable::{DurableOpts, DurableReport, DurableRunner, RunSummary};
pub use jobline::{JobSpec, RunKey};
pub use runner::{Backend, Observer, Progress, RunReport, Runner, SimHandle};

use brace_common::{BraceError, Result};
use brace_core::{Agent, Behavior};
use brace_spatial::IndexKind;
use std::sync::Arc;

/// Everything the driver needs to launch one scenario instance: the
/// behavior, its initial population, and the run configuration the scenario
/// considers its defaults.
pub struct ScenarioSetup {
    /// The simulation program, shared by every worker.
    pub behavior: Arc<dyn Behavior>,
    /// Deterministic initial population (a pure function of the build seed).
    pub population: Vec<Agent>,
    /// Spatial index the query phase should build.
    pub index: IndexKind,
    /// Master-coordination cadence for cluster runs (ticks per epoch).
    pub epoch_len: u64,
    /// x-extent of the initial 1-D column partitioning for cluster runs.
    pub space_x: (f64, f64),
}

/// A named, self-describing workload.
///
/// Implementations must be deterministic end to end: `build(size, seed)`
/// must return the same behavior and population for the same arguments on
/// every machine, so that a scenario name plus a seed fully identifies a
/// simulation.
pub trait Scenario: Send + Sync {
    /// Registry name (unique, kebab-case; the CLI and bench key on it).
    fn name(&self) -> &'static str;

    /// One-line human description.
    fn description(&self) -> &'static str;

    /// Population size used when [`Scenario::build`] gets `None`.
    fn default_population(&self) -> usize;

    /// Construct the behavior and a deterministic seeded population of
    /// roughly `size` agents (scenarios whose population derives from
    /// other parameters — e.g. traffic's road density — may differ
    /// slightly), plus the scenario's default run configuration.
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup>;

    /// A reduced configuration for the registry conformance suite, sized
    /// for CI and **exactly distributable**: a cluster run of this setup
    /// must be bit-identical to a single-node run. Spawning is covered by
    /// that contract (spawn ids are assigned in global `(parent id,
    /// ordinal)` order on every backend); the one path that still is not
    /// is non-local float ⊕-aggregation, whose cross-partition summation
    /// order re-associates. Scenarios that use it by default override this
    /// with the equivalent exact form — e.g. the predator's hand-inverted
    /// local assignment — so the conformance suite still pins the runtime
    /// contract for their whole query/update/spawn machinery.
    fn conformance(&self, seed: u64) -> Result<ScenarioSetup> {
        self.build(Some(CONFORMANCE_POPULATION), seed)
    }

    /// Post-run sanity checks over the collected world (model invariants:
    /// conserved counts, bounded states, agents out of obstacles, …).
    /// Runner convenience paths ([`Runner::run`], the CLI) call this after
    /// every run.
    fn check(&self, world: &[Agent]) -> Result<()> {
        let _ = world;
        Ok(())
    }
}

/// The named scenario collection.
pub struct Registry {
    scenarios: Vec<Box<dyn Scenario>>,
}

impl Registry {
    /// An empty registry (build your own catalogue).
    pub fn empty() -> Registry {
        Registry { scenarios: Vec::new() }
    }

    /// The in-tree catalogue: every workload this repo ships.
    pub fn builtin() -> Registry {
        let mut r = Registry::empty();
        for s in builtin::all() {
            r.register(s).expect("builtin scenario names are unique");
        }
        r
    }

    /// Add a scenario; rejects duplicate names.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) -> Result<()> {
        if self.get(scenario.name()).is_some() {
            return Err(BraceError::Config(format!("scenario `{}` is already registered", scenario.name())));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Look a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.scenarios.iter().find(|s| s.name() == name).map(|s| s.as_ref())
    }

    /// Like [`Registry::get`], but an error naming the alternatives.
    pub fn get_or_err(&self, name: &str) -> Result<&dyn Scenario> {
        self.get(name).ok_or_else(|| {
            BraceError::Config(format!("unknown scenario `{name}` (registered: {})", self.names().join(", ")))
        })
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Iterate the scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.scenarios.iter().map(|s| s.as_ref())
    }

    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

/// FNV-1a over every bit of the world: ids, positions, states, effects,
/// liveness, in slice order. Position/state bits go in via `to_bits`, so
/// even a `-0.0` vs `0.0` flip moves the sum. This is the repo's canonical
/// world fingerprint — the golden-tick suite, the registry conformance
/// suite and the CLI all report it, so their numbers are directly
/// comparable. Callers compare worlds **sorted by agent id**
/// ([`SimHandle::world`] returns them that way).
pub fn world_checksum(agents: &[Agent]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(PRIME)
    }
    let mut h = OFFSET;
    for a in agents {
        h = mix(h, a.id.raw());
        h = mix(h, a.pos.x.to_bits());
        h = mix(h, a.pos.y.to_bits());
        h = mix(h, a.alive as u64);
        for s in &a.state {
            h = mix(h, s.to_bits());
        }
        for e in &a.effects {
            h = mix(h, e.to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_is_populated_and_unique() {
        let r = Registry::builtin();
        assert!(r.len() >= 8, "expected the full catalogue, got {:?}", r.names());
        let mut names = r.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), r.len(), "duplicate names");
        for s in r.iter() {
            assert!(!s.description().is_empty());
            assert!(s.default_population() > 0);
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = Registry::builtin();
        let err = r.register(builtin::all().remove(0)).expect_err("duplicate must be rejected");
        assert!(err.to_string().contains("already registered"));
    }

    #[test]
    fn lookup_unknown_names_alternatives() {
        let r = Registry::builtin();
        let err = r.get_or_err("no-such-scenario").err().unwrap();
        assert!(err.to_string().contains("fish"), "{err}");
    }

    #[test]
    fn checksum_sees_every_bit() {
        let r = Registry::builtin();
        let setup = r.get("fish").unwrap().build(Some(10), 1).unwrap();
        let mut world = setup.population;
        let base = world_checksum(&world);
        world[3].pos.x = -world[3].pos.x;
        assert_ne!(base, world_checksum(&world));
    }
}
