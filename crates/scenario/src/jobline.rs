//! Canonical job lines: one textual answer to "which simulation is this?".
//!
//! Two layers share this module. The durable-run manifests record a
//! [`JobSpec`] line (`scenario=… size=… conformance=…`) in their header so
//! a fresh process can rebuild the behavior after a crash — that format is
//! on disk, so [`JobSpec::encode`]/[`JobSpec::parse`] must stay
//! byte-compatible with every manifest already written. The serve layer
//! ([`brace-serve`]) extends the same line with the remaining run
//! parameters — seed, horizon, index override, backend — into a [`RunKey`]
//! whose [`RunKey::canonical`] string *fully determines the result bits*:
//! scenario builds are pure functions of `(size, seed)` (the
//! [`Scenario`](crate::Scenario) determinism contract) and the engine is
//! deterministic given the built world, the index, and the backend. That
//! is what makes [`RunKey::cache_key`] sound as a result-cache key —
//! equal keys provably yield bit-identical checksums, so a cached result
//! can be served without re-simulating.
//!
//! The backend label is part of the key even though conformance scenarios
//! are exactly distributable (single ≡ cluster): non-conformance runs of
//! float-⊕-aggregating models are *not* backend-invariant, and the serve
//! layer caches those too. Keying conservatively on the label trades a
//! few duplicate cache entries for never serving a wrong bit pattern.
//!
//! Parsers here skip unknown `key=value` fields rather than rejecting
//! them, so an older binary can still read a line written by a newer one
//! that appended fields.

use brace_common::{BraceError, Result};
use brace_spatial::IndexKind;

/// FNV-1a over a byte string — the repo's standard non-cryptographic hash
/// (same constants as `world_checksum`), here hashing canonical job lines
/// into cache keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The scenario/job line recorded in durable manifest headers. Everything
/// needed to rebuild the behavior in a fresh process, given the header's
/// seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Population size (`None` = the scenario default).
    pub size: Option<usize>,
    /// Whether the reduced, exactly-distributable conformance form is used.
    pub conformance: bool,
}

impl JobSpec {
    /// Encode as the manifest job line: `scenario=… size=… conformance=…`.
    /// This exact byte format is persisted in durable-run manifests — do
    /// not reorder or rename fields.
    pub fn encode(&self) -> String {
        let size = self.size.map(|n| n.to_string()).unwrap_or_else(|| "default".into());
        format!("scenario={} size={size} conformance={}", self.scenario, self.conformance)
    }

    /// Parse a job line back. Unknown keys are skipped, not rejected: an
    /// older binary can still resume a manifest written by a newer one
    /// that appended fields.
    pub fn parse(job: &str) -> Result<JobSpec> {
        let mut scenario = None;
        let mut size = None;
        let mut conformance = false;
        for field in job.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| BraceError::Config(format!("malformed job field `{field}` in `{job}`")))?;
            match key {
                "scenario" => scenario = Some(value.to_string()),
                "size" if value == "default" => size = None,
                "size" => {
                    size = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| BraceError::Config(format!("bad size `{value}` in job `{job}`")))?,
                    )
                }
                "conformance" => conformance = value == "true",
                _ => {}
            }
        }
        let scenario = scenario.ok_or_else(|| BraceError::Config(format!("job `{job}` names no scenario")))?;
        Ok(JobSpec { scenario, size, conformance })
    }
}

/// Stable textual name for an index override in a canonical line.
fn index_name(kind: IndexKind) -> &'static str {
    match kind {
        IndexKind::Scan => "scan",
        IndexKind::KdTree => "kd",
        IndexKind::Grid => "grid",
    }
}

/// A [`JobSpec`] completed with every remaining parameter that determines
/// the result bits of a run: seed, horizon, index override, backend. The
/// serve layer's result cache keys on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunKey {
    pub job: JobSpec,
    /// Master seed (behavior, population and worker RNGs derive from it).
    pub seed: u64,
    /// Run horizon in ticks.
    pub ticks: u64,
    /// Explicit index override (`None` = the scenario's own choice, which
    /// is itself a pure function of the job — so `None` is canonical).
    pub index: Option<IndexKind>,
    /// Backend label (`single`, `cluster:N`) — see the module docs for why
    /// this is keyed even for exactly-distributable jobs.
    pub backend: String,
}

impl RunKey {
    /// The canonical line: the [`JobSpec::encode`] prefix (kept first so
    /// the two formats visibly share lineage) followed by the remaining
    /// fields in fixed order. Two runs with equal canonical lines produce
    /// bit-identical checksums.
    pub fn canonical(&self) -> String {
        let mut line = self.job.encode();
        line.push_str(&format!(" seed={} ticks={}", self.seed, self.ticks));
        line.push_str(&format!(" index={}", self.index.map(index_name).unwrap_or("auto")));
        line.push_str(&format!(" backend={}", self.backend));
        line
    }

    /// FNV-1a hash of [`RunKey::canonical`] — the result-cache key.
    pub fn cache_key(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_and_matches_manifest_format() {
        let job = JobSpec { scenario: "fish".into(), size: Some(300), conformance: true };
        let line = job.encode();
        // The exact on-disk manifest format — byte-compatibility is load-bearing.
        assert_eq!(line, "scenario=fish size=300 conformance=true");
        assert_eq!(JobSpec::parse(&line).unwrap(), job);

        let default = JobSpec { scenario: "traffic".into(), size: None, conformance: false };
        assert_eq!(default.encode(), "scenario=traffic size=default conformance=false");
        assert_eq!(JobSpec::parse(&default.encode()).unwrap(), default);
    }

    #[test]
    fn job_spec_parse_skips_unknown_fields_and_rejects_garbage() {
        let parsed = JobSpec::parse("scenario=fish size=10 conformance=true future=field").unwrap();
        assert_eq!(parsed.scenario, "fish");
        assert!(JobSpec::parse("size=10").is_err(), "a job line must name a scenario");
        assert!(JobSpec::parse("scenario=fish size=ten").is_err());
        assert!(JobSpec::parse("no-equals-sign").is_err());
    }

    #[test]
    fn run_key_distinguishes_every_parameter() {
        let base = RunKey {
            job: JobSpec { scenario: "epidemic".into(), size: None, conformance: true },
            seed: 42,
            ticks: 20,
            index: None,
            backend: "single".into(),
        };
        assert_eq!(
            base.canonical(),
            "scenario=epidemic size=default conformance=true seed=42 ticks=20 index=auto backend=single"
        );
        let variants = [
            RunKey { seed: 43, ..base.clone() },
            RunKey { ticks: 21, ..base.clone() },
            RunKey { index: Some(IndexKind::Grid), ..base.clone() },
            RunKey { backend: "cluster:4".into(), ..base.clone() },
            RunKey { job: JobSpec { conformance: false, ..base.job.clone() }, ..base.clone() },
            RunKey { job: JobSpec { size: Some(300), ..base.job.clone() }, ..base.clone() },
        ];
        for v in &variants {
            assert_ne!(v.cache_key(), base.cache_key(), "{} vs {}", v.canonical(), base.canonical());
        }
        // Equal keys hash equally (determinism of the key itself).
        assert_eq!(base.cache_key(), base.clone().cache_key());
    }
}
