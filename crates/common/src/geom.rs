//! Two-dimensional geometry primitives.
//!
//! BRACE treats a tick as a spatial self-join: every agent is joined with the
//! agents inside its *visible region*. Visible and reachable regions are
//! axis-aligned rectangles ([`Rect`]), matching the paper's implementation
//! choice ("in our current implementation the constraints are
//! (hyper)rectangles").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in the two-dimensional simulation space.
///
/// One-dimensional models (the linear highway of the traffic simulation) use
/// `y` for the lane index so that the same spatial machinery serves both.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length; cheaper than [`Vec2::norm`] when only
    /// comparisons are needed (hot in neighbor queries).
    #[inline]
    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(self, other: Vec2) -> f64 {
        (self - other).norm2()
    }

    /// Chebyshev (L∞) distance; rectangles with half-extent `r` contain
    /// exactly the points with Chebyshev distance ≤ `r`.
    #[inline]
    pub fn dist_linf(self, other: Vec2) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Unit vector in the same direction, or zero if the vector is (near)
    /// zero. Behavioral models normalize influence vectors this way so a
    /// lone agent is not pulled toward NaN.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Rotate by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Angle of the vector in radians in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Component-wise clamp into `rect`.
    #[inline]
    pub fn clamped(self, rect: &Rect) -> Vec2 {
        Vec2::new(self.x.clamp(rect.lo.x, rect.hi.x), self.y.clamp(rect.lo.y, rect.hi.y))
    }

    /// True if any component is NaN; used by debug assertions in the tick
    /// executor to catch models that diverge.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.x.is_nan() || self.y.is_nan()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// A closed axis-aligned rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
///
/// Used for visible regions, reachable regions, partition owned regions and
/// KD-tree bounding boxes. An *empty* rectangle has `lo > hi` on some axis
/// and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub lo: Vec2,
    pub hi: Vec2,
}

impl Rect {
    /// The empty rectangle: the identity for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        lo: Vec2 { x: f64::INFINITY, y: f64::INFINITY },
        hi: Vec2 { x: f64::NEG_INFINITY, y: f64::NEG_INFINITY },
    };

    /// The whole plane: the identity for [`Rect::intersection`] and the
    /// visible region of an unconstrained agent.
    pub const EVERYTHING: Rect = Rect {
        lo: Vec2 { x: f64::NEG_INFINITY, y: f64::NEG_INFINITY },
        hi: Vec2 { x: f64::INFINITY, y: f64::INFINITY },
    };

    #[inline]
    pub const fn new(lo: Vec2, hi: Vec2) -> Self {
        Rect { lo, hi }
    }

    /// Rectangle from axis intervals `[x0, x1] × [y0, y1]`.
    #[inline]
    pub fn from_bounds(x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        Rect::new(Vec2::new(x0, y0), Vec2::new(x1, y1))
    }

    /// Axis-aligned square of half-extent `r` centered on `c`: the visible
    /// region of an agent with `#range[-r, r]` constraints on both axes.
    #[inline]
    pub fn centered(c: Vec2, r: f64) -> Self {
        Rect::new(Vec2::new(c.x - r, c.y - r), Vec2::new(c.x + r, c.y + r))
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    #[inline]
    pub fn center(&self) -> Vec2 {
        Vec2::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// Closed containment test (boundary points are inside).
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// True if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// True if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.lo.x <= other.lo.x
                && self.lo.y <= other.lo.y
                && self.hi.x >= other.hi.x
                && self.hi.y >= other.hi.y)
    }

    /// Smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            Vec2::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            Vec2::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        )
    }

    /// Largest rectangle contained in both inputs (possibly empty).
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect::new(
            Vec2::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            Vec2::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        )
    }

    /// Grow the rectangle by `r` on every side. This is the *visible region
    /// of a partition*: the owned region dilated by the agents' visibility
    /// bound (Minkowski sum with a square of half-extent `r`).
    #[inline]
    pub fn expanded(&self, r: f64) -> Rect {
        Rect::new(Vec2::new(self.lo.x - r, self.lo.y - r), Vec2::new(self.hi.x + r, self.hi.y + r))
    }

    /// Grow the rectangle to include point `p`.
    #[inline]
    pub fn extended(&self, p: Vec2) -> Rect {
        Rect::new(Vec2::new(self.lo.x.min(p.x), self.lo.y.min(p.y)), Vec2::new(self.hi.x.max(p.x), self.hi.y.max(p.y)))
    }

    /// Minimum squared distance from `p` to any point of the rectangle
    /// (0 when `p` is inside). Used by the KD-tree nearest-neighbor search
    /// to prune subtrees.
    #[inline]
    pub fn dist2_to_point(&self, p: Vec2) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx * dx + dy * dy
    }
}

impl Default for Rect {
    fn default() -> Self {
        Rect::EMPTY
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
    }

    #[test]
    fn vec2_norms_and_distances() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm2(), 25.0);
        assert_eq!(a.dist(Vec2::ZERO), 5.0);
        assert_eq!(a.dist2(Vec2::ZERO), 25.0);
        assert_eq!(a.dist_linf(Vec2::ZERO), 4.0);
    }

    #[test]
    fn vec2_normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let u = Vec2::new(0.0, -7.0).normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(u, Vec2::new(0.0, -1.0));
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rect_containment_is_closed() {
        let r = Rect::from_bounds(0.0, 1.0, 0.0, 1.0);
        assert!(r.contains(Vec2::new(0.0, 0.0)));
        assert!(r.contains(Vec2::new(1.0, 1.0)));
        assert!(r.contains(Vec2::new(0.5, 0.5)));
        assert!(!r.contains(Vec2::new(1.0001, 0.5)));
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::from_bounds(0.0, 2.0, 0.0, 2.0);
        let b = Rect::from_bounds(1.0, 3.0, 1.0, 3.0);
        let i = a.intersection(&b);
        assert_eq!(i, Rect::from_bounds(1.0, 2.0, 1.0, 2.0));
        let u = a.union(&b);
        assert_eq!(u, Rect::from_bounds(0.0, 3.0, 0.0, 3.0));
        assert!(a.intersects(&b));
        let far = Rect::from_bounds(10.0, 11.0, 10.0, 11.0);
        assert!(!a.intersects(&far));
        assert!(a.intersection(&far).is_empty());
    }

    #[test]
    fn rect_empty_is_union_identity() {
        let a = Rect::from_bounds(-1.0, 4.0, 2.0, 3.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert!(Rect::EMPTY.is_empty());
        assert!(!Rect::EMPTY.intersects(&a));
    }

    #[test]
    fn rect_expansion_is_partition_visible_region() {
        let owned = Rect::from_bounds(0.0, 10.0, 0.0, 10.0);
        let vis = owned.expanded(2.5);
        assert_eq!(vis, Rect::from_bounds(-2.5, 12.5, -2.5, 12.5));
        // Every point visible from inside `owned` with bound 2.5 is in `vis`.
        assert!(vis.contains(Vec2::new(-2.5, 0.0)));
        assert!(!vis.contains(Vec2::new(-2.6, 0.0)));
    }

    #[test]
    fn rect_dist2_to_point() {
        let r = Rect::from_bounds(0.0, 1.0, 0.0, 1.0);
        assert_eq!(r.dist2_to_point(Vec2::new(0.5, 0.5)), 0.0);
        assert_eq!(r.dist2_to_point(Vec2::new(2.0, 0.5)), 1.0);
        assert_eq!(r.dist2_to_point(Vec2::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn rect_centered_matches_linf_ball() {
        let c = Vec2::new(1.0, -1.0);
        let r = Rect::centered(c, 3.0);
        assert!(r.contains(Vec2::new(4.0, 2.0)));
        assert!(!r.contains(Vec2::new(4.1, 0.0)));
        assert_eq!(r.center(), c);
    }
}
