//! Statistics utilities used by validation and benchmarking.
//!
//! The paper validates its MITSIM reimplementation with RMSPE (Relative Mean
//! Square Percentage Error, Table 2) over per-lane traffic statistics, and
//! reports throughput in agent-ticks/second. This module provides those
//! measures plus the online accumulators the load balancer uses.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm). Numerically
/// stable for the long streams produced by epoch statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel Welford); lets workers aggregate
    /// statistics locally and the master combine them per epoch.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Relative Mean Square Percentage Error between an observed series and a
/// reference series, the goodness-of-fit measure of the paper's Table 2:
///
/// `RMSPE = sqrt( (1/n) * Σ ((obs_i - ref_i) / ref_i)^2 )`
///
/// Pairs whose reference value is zero are skipped (a zero denominator says
/// nothing about relative error). Returns `None` when no usable pair exists
/// or the lengths differ.
pub fn rmspe(observed: &[f64], reference: &[f64]) -> Option<f64> {
    if observed.len() != reference.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0u32;
    for (&o, &r) in observed.iter().zip(reference) {
        if r == 0.0 {
            continue;
        }
        let rel = (o - r) / r;
        sum += rel * rel;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((sum / n as f64).sqrt())
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating edge bins; used for
/// spatial density profiles (lane densities, fish distribution over the
/// partitioning axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram interval must be non-empty");
        Histogram { lo, hi, bins: vec![0; bins], total: 0 }
    }

    /// Index of the bin holding `x`; values outside `[lo, hi)` clamp to the
    /// edge bins so nothing is lost.
    fn bin_of(&self, x: f64) -> usize {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let i = ((x - self.lo) / w).floor();
        (i.max(0.0) as usize).min(self.bins.len() - 1)
    }

    pub fn push(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.bins[b] += 1;
        self.total += 1;
    }

    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of all samples in the most loaded bin; 1/bins for a uniform
    /// distribution, approaching 1.0 as everything piles into one bin. The
    /// Fig. 7/8 analysis uses this as its imbalance measure.
    pub fn max_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.bins.iter().max().unwrap() as f64 / self.total as f64
    }
}

/// Simple throughput helper: agent-ticks per second, the unit of Figures
/// 5–7.
pub fn agent_ticks_per_sec(agents: usize, ticks: usize, elapsed_secs: f64) -> f64 {
    if elapsed_secs <= 0.0 {
        return 0.0;
    }
    (agents as f64 * ticks as f64) / elapsed_secs
}

/// Least-squares slope of `log2(y)` against `log2(x)`: the empirical growth
/// exponent. Benchmark shape tests use this to distinguish quadratic
/// (slope ≈ 2) from (log-)linear (slope ≈ 1) scaling, mirroring the paper's
/// Fig. 3 discussion without depending on absolute machine speed.
pub fn log_log_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> =
        points.iter().filter(|(x, y)| *x > 0.0 && *y > 0.0).map(|&(x, y)| (x.log2(), y.log2())).collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn rmspe_zero_for_identical_series() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(rmspe(&s, &s), Some(0.0));
    }

    #[test]
    fn rmspe_known_value() {
        // 10% relative error on every point -> RMSPE = 0.1.
        let obs = [1.1, 2.2, 3.3];
        let reference = [1.0, 2.0, 3.0];
        let e = rmspe(&obs, &reference).unwrap();
        assert!((e - 0.1).abs() < 1e-12, "{e}");
    }

    #[test]
    fn rmspe_skips_zero_reference() {
        let obs = [5.0, 1.1];
        let reference = [0.0, 1.0];
        let e = rmspe(&obs, &reference).unwrap();
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(rmspe(&[1.0], &[0.0]), None);
        assert_eq!(rmspe(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(0.5); // bin 0
        h.push(9.9); // bin 4
        h.push(-3.0); // clamps to bin 0
        h.push(42.0); // clamps to bin 4
        h.push(5.0); // bin 2
        assert_eq!(h.counts(), &[2, 0, 1, 0, 2]);
        assert_eq!(h.total(), 5);
        assert!((h.max_share() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn throughput_helper() {
        assert_eq!(agent_ticks_per_sec(1000, 10, 2.0), 5000.0);
        assert_eq!(agent_ticks_per_sec(1000, 10, 0.0), 0.0);
    }

    #[test]
    fn log_log_slope_detects_growth_order() {
        let quad: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        let lin: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((log_log_slope(&quad).unwrap() - 2.0).abs() < 1e-9);
        assert!((log_log_slope(&lin).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(log_log_slope(&[(1.0, 1.0)]), None);
    }
}
