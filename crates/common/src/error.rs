//! The workspace-wide error type.
//!
//! BRACE is a library first: nothing here panics on user input. Model
//! construction, BRASIL compilation and runtime configuration all report
//! failures through [`BraceError`].

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, BraceError>;

/// Errors surfaced by the BRACE engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BraceError {
    /// Invalid engine or runtime configuration (zero workers, empty space,
    /// inconsistent epoch length, …).
    Config(String),
    /// A schema violation: unknown field, state/effect misuse, wrong arity.
    Schema(String),
    /// BRASIL front-end failure (lexing/parsing), with 1-based line/column.
    Parse { line: u32, col: u32, message: String },
    /// BRASIL semantic analysis failure (the state-effect checker).
    Semantic(String),
    /// A rewrite that cannot be applied (e.g. effect inversion on a script
    /// whose visibility constraints forbid it without relaxation).
    Rewrite(String),
    /// Checkpoint serialization/restore failure.
    Checkpoint(String),
    /// A worker died and no checkpoint exists to recover from.
    Unrecoverable(String),
}

impl fmt::Display for BraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BraceError::Config(m) => write!(f, "configuration error: {m}"),
            BraceError::Schema(m) => write!(f, "schema error: {m}"),
            BraceError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            BraceError::Semantic(m) => write!(f, "semantic error: {m}"),
            BraceError::Rewrite(m) => write!(f, "rewrite error: {m}"),
            BraceError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            BraceError::Unrecoverable(m) => write!(f, "unrecoverable failure: {m}"),
        }
    }
}

impl std::error::Error for BraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_actionable() {
        let e = BraceError::Parse { line: 3, col: 14, message: "expected `;`".into() };
        assert_eq!(e.to_string(), "parse error at 3:14: expected `;`");
        let c = BraceError::Config("need at least one worker".into());
        assert!(c.to_string().contains("at least one worker"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BraceError::Semantic("x".into()));
    }
}
