//! Strongly-typed identifiers.
//!
//! The runtime juggles several id spaces at once (agents, partitions, worker
//! nodes, schema fields). Newtypes keep them from being confused and make
//! function signatures self-documenting at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Convert to a `usize` index (for dense per-id tables).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Unique identifier of an agent (the paper's `oid`). Stable across the
    /// agent's lifetime; replicas of an agent on other partitions carry the
    /// same id, which is how the second reduce pass groups partial effects.
    AgentId,
    u64,
    "a"
);

id_type!(
    /// Identifier of a spatial partition (one owned region of the
    /// partitioning function `P`). Each reducer processes one partition.
    PartitionId,
    u32,
    "p"
);

id_type!(
    /// Identifier of a worker node in the (simulated) cluster. Workers host
    /// collocated map + reduce tasks for the partitions assigned to them.
    WorkerId,
    u32,
    "w"
);

id_type!(
    /// Index of a field in an agent schema (state or effect slot).
    FieldId,
    u16,
    "f"
);

/// Monotonic generator for [`AgentId`]s, used when models spawn agents at
/// runtime (the predator simulation's `spawn`). Each worker is handed a
/// disjoint id block so spawning never needs cross-node coordination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentIdGen {
    next: u64,
    end: u64,
}

impl AgentIdGen {
    /// A generator handing out ids in `[start, end)`.
    pub fn block(start: u64, end: u64) -> Self {
        assert!(start <= end, "id block must be non-decreasing");
        AgentIdGen { next: start, end }
    }

    /// A generator with the entire id space above `start`.
    pub fn from(start: u64) -> Self {
        AgentIdGen { next: start, end: u64::MAX }
    }

    /// Allocate the next id, or `None` when the block is exhausted.
    pub fn alloc(&mut self) -> Option<AgentId> {
        if self.next >= self.end {
            return None;
        }
        let id = AgentId::new(self.next);
        self.next += 1;
        Some(id)
    }

    /// How many ids remain in this block.
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_display() {
        let a = AgentId::new(7);
        let p = PartitionId::new(3);
        let w = WorkerId::new(1);
        let f = FieldId::new(2);
        assert_eq!(a.to_string(), "a7");
        assert_eq!(p.to_string(), "p3");
        assert_eq!(w.to_string(), "w1");
        assert_eq!(f.to_string(), "f2");
        assert_eq!(a.raw(), 7);
        assert_eq!(p.index(), 3);
    }

    #[test]
    fn id_ordering_follows_raw_value() {
        assert!(AgentId::new(1) < AgentId::new(2));
        assert_eq!(AgentId::from(5u64), AgentId::new(5));
    }

    #[test]
    fn id_gen_allocates_disjoint_blocks() {
        let mut g1 = AgentIdGen::block(0, 3);
        let mut g2 = AgentIdGen::block(3, 5);
        let first: Vec<_> = std::iter::from_fn(|| g1.alloc()).collect();
        let second: Vec<_> = std::iter::from_fn(|| g2.alloc()).collect();
        assert_eq!(first, vec![AgentId::new(0), AgentId::new(1), AgentId::new(2)]);
        assert_eq!(second, vec![AgentId::new(3), AgentId::new(4)]);
        assert_eq!(g1.remaining(), 0);
    }

    #[test]
    fn id_gen_unbounded_never_exhausts_soon() {
        let mut g = AgentIdGen::from(100);
        assert_eq!(g.alloc(), Some(AgentId::new(100)));
        assert_eq!(g.alloc(), Some(AgentId::new(101)));
        assert!(g.remaining() > 1 << 60);
    }
}
