//! Deterministic, splittable random number generation.
//!
//! Behavioral models call `rand()` inside agent programs (the fish velocity
//! perturbation, MITSIM's probabilistic lane selection). For the runtime's
//! correctness story — *the same seed produces the same simulation regardless
//! of worker count or agent iteration order* — randomness must be a pure
//! function of `(seed, agent id, tick)`, never of scheduling. [`DetRng`]
//! provides exactly that: a small counter-based generator built on
//! SplitMix64 finalization, plus [`DetRng::stream`] to derive independent
//! per-agent/per-tick streams.
//!
//! `rand::Rng` is implemented so models can use the familiar `gen_range`
//! API; `rand` is used only for its traits, not for any global state.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a bijective mixing of a 64-bit value with good
/// avalanche properties. Public so tests and hashing helpers can reuse it.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic counter-based RNG.
///
/// Equivalent streams are derived by hashing `(seed, stream tags...)`; the
/// sequence itself is `splitmix64(state + n)` for n = 1, 2, …, which passes
/// the statistical needs of behavioral simulation (uniform perturbations,
/// Bernoulli decisions) while being trivially serializable for checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    state: u64,
    counter: u64,
}

impl DetRng {
    /// Root generator for a simulation run.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: splitmix64(seed ^ 0xA076_1D64_78BD_642F), counter: 0 }
    }

    /// Derive an independent stream tagged by `tag`. Typical use:
    /// `root.stream(agent_id).stream(tick)` — identical no matter which
    /// worker executes the agent or in which order.
    #[inline]
    pub fn stream(&self, tag: u64) -> DetRng {
        DetRng { state: splitmix64(self.state ^ splitmix64(tag ^ 0x9E6C_63D0_876A_3F6B)), counter: 0 }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(self.state.wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the interval is empty or
    /// inverted, so models degrade gracefully on pathological parameters.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection-free multiply-shift is fine here; a tiny
        // modulo bias on 64-bit space is far below simulation noise, but we
        // use widening multiply to avoid even that.
        ((self.next_raw() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller; used for velocity perturbations.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Raw `(state, counter)` parts, for compact binary checkpoints.
    pub fn to_parts(&self) -> (u64, u64) {
        (self.state, self.counter)
    }

    /// Rebuild from [`DetRng::to_parts`]; the stream continues exactly
    /// where it left off.
    pub fn from_parts(state: u64, counter: u64) -> Self {
        DetRng { state, counter }
    }
}

impl RngCore for DetRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_parent_consumption() {
        let root = DetRng::seed_from_u64(7);
        let mut consumed = root.clone();
        consumed.next_raw();
        // Deriving a stream depends only on the seed state, not the counter.
        assert_eq!(root.stream(5), consumed.stream(5));
        assert_ne!(root.stream(5), root.stream(6));
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = DetRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_mean_is_near_half() {
        let mut rng = DetRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from_u64(8);
        assert!(!(0..1000).any(|_| rng.chance(0.0)));
        assert!((0..1000).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn range_handles_degenerate_interval() {
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(rng.range(3.0, 3.0), 3.0);
        assert_eq!(rng.range(5.0, 2.0), 5.0);
    }

    #[test]
    fn rng_core_fill_bytes_deterministic() {
        let mut a = DetRng::seed_from_u64(13);
        let mut b = DetRng::seed_from_u64(13);
        let mut ba = [0u8; 17];
        let mut bb = [0u8; 17];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn serde_round_trip_preserves_stream_position() {
        let mut rng = DetRng::seed_from_u64(21);
        rng.next_raw();
        rng.next_raw();
        let json = serde_json_like(&rng);
        let mut restored: DetRng = from_json_like(&json);
        assert_eq!(rng.next_raw(), restored.next_raw());
    }

    // Minimal stand-ins so this test does not require serde_json: we use the
    // fact that DetRng is two u64s.
    fn serde_json_like(r: &DetRng) -> (u64, u64) {
        (r.state, r.counter)
    }
    fn from_json_like(v: &(u64, u64)) -> DetRng {
        DetRng { state: v.0, counter: v.1 }
    }
}
