//! Shared foundation types for the BRACE behavioral-simulation engine.
//!
//! This crate deliberately contains no simulation logic. It provides the
//! vocabulary every other crate speaks:
//!
//! * [`geom`] — two-dimensional geometry ([`Vec2`], [`Rect`]) used for agent
//!   positions, visible regions and partition bounds.
//! * [`ids`] — strongly-typed identifiers for agents, partitions, workers and
//!   fields so the compiler catches id mix-ups.
//! * [`rng`] — a deterministic, splittable random-number generator. Every
//!   simulation run in this workspace is reproducible from a single `u64`
//!   seed; per-agent streams keep results independent of iteration order.
//! * [`stats`] — online statistics (Welford), the RMSPE goodness-of-fit
//!   measure used by the paper's Table 2, and simple histograms.
//! * [`error`] — the shared error type.

pub mod error;
pub mod geom;
pub mod ids;
pub mod rng;
pub mod stats;

pub use error::{BraceError, Result};
pub use geom::{Rect, Vec2};
pub use ids::{AgentId, FieldId, PartitionId, WorkerId};
pub use rng::DetRng;
pub use stats::{rmspe, Histogram, Welford};
