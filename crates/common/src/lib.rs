//! Shared foundation types for the BRACE behavioral-simulation engine.
//!
//! This crate deliberately contains no simulation logic. It provides the
//! vocabulary every other crate speaks:
//!
//! * [`geom`] — two-dimensional geometry ([`Vec2`], [`Rect`]) used for agent
//!   positions, visible regions and partition bounds.
//! * [`ids`] — strongly-typed identifiers for agents, partitions, workers and
//!   fields so the compiler catches id mix-ups.
//! * [`rng`] — a deterministic, splittable random-number generator. Every
//!   simulation run in this workspace is reproducible from a single `u64`
//!   seed; per-agent streams keep results independent of iteration order.
//! * [`stats`] — online statistics (Welford), the RMSPE goodness-of-fit
//!   measure used by the paper's Table 2, and simple histograms.
//! * [`error`] — the shared error type.

pub mod error;
pub mod geom;
pub mod ids;
pub mod rng;
pub mod stats;

pub use error::{BraceError, Result};

/// Define a `with_*`-style accessor over a per-thread reusable scratch
/// value:
///
/// ```ignore
/// tls_scratch!(
///     /// Reusable per-thread candidate buffer.
///     pub fn with_candidate_scratch -> Vec<u32>
/// );
/// ```
///
/// expands to `fn with_candidate_scratch<R>(f: impl FnOnce(&mut Vec<u32>) -> R) -> R`
/// backed by a `thread_local!` `RefCell` initialized with `Default`. Hot
/// probe paths use these so per-probe buffers allocate nothing after
/// warm-up. Accessors are **not reentrant** — nesting the same accessor
/// panics on the `RefCell` borrow; callers gather, compute, and return.
#[macro_export]
macro_rules! tls_scratch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident -> $ty:ty) => {
        $(#[$meta])*
        $vis fn $name<R>(f: impl FnOnce(&mut $ty) -> R) -> R {
            ::std::thread_local! {
                static SCRATCH: ::std::cell::RefCell<$ty> =
                    ::std::cell::RefCell::new(<$ty as ::core::default::Default>::default());
            }
            SCRATCH.with(|s| f(&mut s.borrow_mut()))
        }
    };
}
pub use geom::{Rect, Vec2};
pub use ids::{AgentId, FieldId, PartitionId, WorkerId};
pub use rng::DetRng;
pub use stats::{rmspe, Histogram, Welford};
