//! `paper` — regenerate every figure and table of "Behavioral Simulations
//! in MapReduce" (Wang et al., VLDB 2010), plus the executor throughput
//! baseline.
//!
//! ```text
//! paper [fig3|fig4|fig5|fig6|fig7|fig8|table2|all] [--scale small|paper]
//! paper tick-throughput [--quick] [--agents N,M] [--ticks T] [--warmup W]
//!                       [--parallel P] [--cluster-agents N] [--cluster-workers A,B]
//!                       [--hotspot-agents N] [--out PATH]
//! ```
//!
//! Absolute numbers are machine-dependent; the shapes (growth orders,
//! who-wins, crossovers) are what reproduce the paper. Each section prints
//! a shape summary next to the raw rows. See EXPERIMENTS.md for recorded
//! paper-vs-measured comparisons. `tick-throughput` measures the sharded
//! executor serial vs parallel and writes `BENCH_tick_throughput.json`,
//! the baseline future perf PRs regress against.

use brace_bench::table::{print_table, secs, tput};
use brace_bench::{fig3, fig4, fig5, fig6, fig7, fig8, table2, Scale};
use brace_bench::{throughput, ThroughputConfig};
use brace_common::stats::log_log_slope;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("tick-throughput") {
        run_tick_throughput(&args[1..]);
        return;
    }
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale takes `small` or `paper`"));
            }
            s if s.starts_with("--scale=") => {
                scale = Scale::parse(&s["--scale=".len()..]).unwrap_or_else(|| die("--scale takes `small` or `paper`"));
            }
            "-h" | "--help" => {
                println!(
                    "usage: paper [fig3|fig4|fig5|fig6|fig7|fig8|table2|all] [--scale small|paper]\n\
                     \x20      paper tick-throughput [--quick] [--agents N,M] [--ticks T] [--warmup W] [--parallel P]\n\
                     \x20            [--cluster-agents N] [--cluster-workers A,B] [--hotspot-agents N] [--out PATH]"
                );
                return;
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2"].iter().map(|s| s.to_string()).collect();
    }
    println!("BRACE paper harness — scale: {scale:?}");
    for w in &which {
        match w.as_str() {
            "fig3" => run_fig3(scale),
            "fig4" => run_fig4(scale),
            "fig5" => run_fig5(scale),
            "fig6" => run_fig6(scale),
            "fig7" => run_fig7(scale),
            "fig8" => run_fig8(scale),
            "table2" => run_table2(scale),
            other => die(&format!("unknown experiment `{other}`")),
        }
    }
}

fn run_tick_throughput(args: &[String]) {
    // `--quick` is a preset applied before flag parsing, so explicit
    // `--agents`/`--ticks`/... override it regardless of argument order.
    let quick = args.iter().any(|a| a == "--quick");
    let mut cfg = if quick { ThroughputConfig::quick() } else { ThroughputConfig::default() };
    // The quick smoke writes next to the build artifacts so the checked-in
    // baseline stays untouched unless --out points back at it.
    let mut out = if quick {
        String::from("target/BENCH_tick_throughput_quick.json")
    } else {
        String::from("BENCH_tick_throughput.json")
    };
    let mut i = 0;
    while i < args.len() {
        let (flag, value): (&str, Option<String>) = match args[i].split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (args[i].as_str(), None),
        };
        if flag == "--quick" {
            i += 1;
            continue;
        }
        let take = |i: &mut usize| -> String {
            match &value {
                Some(v) => v.clone(),
                None => {
                    *i += 1;
                    args.get(*i).cloned().unwrap_or_else(|| die(&format!("{flag} needs a value")))
                }
            }
        };
        match flag {
            "--agents" => {
                cfg.agent_counts = take(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("--agents takes N,M,...")))
                    .collect();
            }
            "--ticks" => cfg.ticks = take(&mut i).parse().unwrap_or_else(|_| die("--ticks takes a number")),
            "--warmup" => cfg.warmup = take(&mut i).parse().unwrap_or_else(|_| die("--warmup takes a number")),
            "--parallel" => cfg.parallelism = take(&mut i).parse().unwrap_or_else(|_| die("--parallel takes a number")),
            "--scan-cap" => cfg.scan_cap = take(&mut i).parse().unwrap_or_else(|_| die("--scan-cap takes a number")),
            "--cluster-agents" => {
                cfg.cluster_agents =
                    take(&mut i).parse().unwrap_or_else(|_| die("--cluster-agents takes a number (0 skips)"));
            }
            "--cluster-workers" => {
                cfg.cluster_workers = take(&mut i)
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("--cluster-workers takes N,M,...")))
                    .collect();
            }
            "--out" => out = take(&mut i),
            "--scenario-agents" => {
                cfg.scenario_agents =
                    take(&mut i).parse().unwrap_or_else(|_| die("--scenario-agents takes a number (0 skips)"));
            }
            "--opt-agents" => {
                cfg.opt_agents = take(&mut i).parse().unwrap_or_else(|_| die("--opt-agents takes a number (0 skips)"));
            }
            "--hotspot-agents" => {
                cfg.hotspot_agents =
                    take(&mut i).parse().unwrap_or_else(|_| die("--hotspot-agents takes a number (0 skips)"));
            }
            other => die(&format!("unknown tick-throughput flag `{other}`")),
        }
        i += 1;
    }
    let report = throughput::tick_throughput(&cfg);
    // The kernel ablation row must always be present — the CI smoke run
    // (`--quick`) relies on this to catch a silently dropped mode.
    assert!(
        report.rows.iter().any(|r| r.mode == "scalar-kernel"),
        "tick-throughput matrix lost the scalar-kernel ablation row"
    );
    // The grid runs its batched range filter natively over the SoA bucket
    // arena (`RANGE_BATCH_NATIVE`), so every measured population must have
    // a grid serial (batched) row paired with its scalar-kernel ablation —
    // the rows behind the grid's `kernel_speedup` — for both models.
    for &n in &cfg.agent_counts {
        for model in ["fish", "traffic"] {
            for mode in ["serial", "scalar-kernel"] {
                assert!(
                    report.rows.iter().any(|r| {
                        r.model == model && r.agents == n && r.index == brace_spatial::IndexKind::Grid && r.mode == mode
                    }),
                    "matrix lost the grid-native kernel row {model}/{n}/{mode}"
                );
            }
        }
    }
    // The hotspot section must cover both models on both tree and grid —
    // the heavy-tailed rows exist precisely to watch the dense-bucket
    // kernels, so losing them silently would blind the baseline. (Skipped
    // when disabled via --hotspot-agents 0.)
    if cfg.hotspot_agents > 0 {
        for model in ["fish", "traffic"] {
            for kind in [brace_spatial::IndexKind::KdTree, brace_spatial::IndexKind::Grid] {
                assert!(
                    report.rows.iter().any(|r| r.hotspot && r.model == model && r.index == kind),
                    "hotspot section lost the {model}/{kind:?} rows"
                );
            }
        }
        assert!(
            report.speedups.iter().any(|s| s.hotspot && s.kernel_speedup > 0.0),
            "hotspot section produced no kernel-speedup rows"
        );
    }
    // The cluster section must cover both models at every configured
    // worker count, and delta distribution must beat full redistribution
    // on replica bytes in the multi-worker steady state — traffic's
    // persisting boundary replicas change only a couple of fields per
    // tick, so the ratio sits well under 1 on any machine. (Skipped when
    // the section is disabled via --cluster-agents 0 / --cluster-workers.)
    if cfg.cluster_agents > 0 && !cfg.cluster_workers.is_empty() {
        for model in ["fish", "traffic"] {
            for &w in &cfg.cluster_workers {
                assert!(
                    report.cluster.iter().any(|c| c.model == model && c.workers == w),
                    "cluster-throughput section lost the {model} x{w} row"
                );
            }
        }
        let delta_wins =
            report.cluster.iter().filter(|c| c.model == "traffic" && c.workers > 1).all(|c| c.delta_over_full < 0.8);
        assert!(delta_wins, "replica-delta bytes must be well under replica-full bytes: {:?}", report.cluster);
    }
    // Bench honesty: on a single visible core every thread-parallel
    // speedup and cluster agents/s scaling row is scheduler noise, and
    // schema v7 marks them `unreliable` so regression tooling (and readers
    // of the checked-in baseline) stop comparing them. The byte-ratio
    // check above is exempt: bytes are counted, not timed. Pin the marking
    // itself so the smoke run catches it regressing.
    let single_core = report.cores == 1;
    assert!(
        report.speedups.iter().all(|s| s.unreliable == single_core)
            && report.cluster.iter().all(|c| c.unreliable == single_core),
        "unreliable marks must track cores == 1 (cores = {})",
        report.cores
    );
    if single_core {
        println!("note: 1 core visible — parallel/cluster throughput rows are marked \"unreliable\": true");
    }
    // The telemetry-overhead ablation must always be present, and enabled
    // recording must stay cheap: ≤ 2% of whole-tick throughput on the
    // headline fish row. The threshold is only enforced where timing is
    // trustworthy — 1-core runs mark the row `unreliable` (the noise floor
    // of a time-sliced core can exceed the effect), so they report the
    // number without failing on it.
    let t = report
        .telemetry
        .first()
        .unwrap_or_else(|| panic!("tick-throughput matrix lost the telemetry-overhead ablation row"));
    println!(
        "telemetry overhead: fish @{} agents — off {} a/s, on {} a/s, {:+.2}%{}",
        t.actual_agents,
        tput(t.off_tick_agents_per_sec),
        tput(t.on_tick_agents_per_sec),
        t.overhead_pct,
        if t.unreliable { " (unreliable: 1 core)" } else { "" }
    );
    assert_eq!(t.unreliable, single_core, "telemetry unreliable mark must track cores == 1");
    if !t.unreliable {
        assert!(t.overhead_pct <= 2.0, "telemetry recording overhead exceeded 2% of tick throughput: {t:?}");
    }
    // The scenario section must cover the whole registry — one row per
    // registered name — so a scenario silently dropping out of the
    // baseline fails the CI smoke run.
    if cfg.scenario_agents > 0 {
        for name in brace_scenario::Registry::builtin().names() {
            assert!(
                report.scenarios.iter().any(|s| s.scenario == name),
                "scenario-throughput section lost the `{name}` row"
            );
        }
    }
    // The optimizer A/B section must cover every brasil-* scenario, and
    // the twins must have actually run (zero visits would mean a vacuous
    // comparison) — the CI smoke run (`--quick`) pins both.
    if cfg.opt_agents > 0 {
        for name in brace_scenario::Registry::builtin().names().iter().filter(|n| n.starts_with("brasil-")) {
            let row = report
                .opt
                .iter()
                .find(|o| o.scenario == **name)
                .unwrap_or_else(|| panic!("optimizer A/B section lost the `{name}` row"));
            assert!(
                row.opt_neighbor_visits > 0 && row.unopt_neighbor_visits > 0,
                "optimizer A/B row `{name}` measured no neighbor visits: {row:?}"
            );
        }
    }
    print_table(
        &format!("Tick throughput — sharded executor, {} core(s)", report.cores),
        &["model", "agents", "index", "mode", "pop", "threads", "query [agents/s]", "tick [agents/s]"],
        &report
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.model.to_string(),
                    r.actual_agents.to_string(),
                    format!("{:?}", r.index),
                    r.mode.to_string(),
                    if r.hotspot { "hotspot" } else { "uniform" }.to_string(),
                    r.parallelism.to_string(),
                    tput(r.query_agents_per_sec),
                    tput(r.tick_agents_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for s in &report.speedups {
        if s.hotspot {
            println!("speedup {}/{}/{:?} (hotspot): kernel {:.2}x", s.model, s.agents, s.index, s.kernel_speedup);
            continue;
        }
        println!(
            "speedup {}/{}/{:?}: query {:.2}x, tick {:.2}x, incremental-index {:.2}x, soa-vs-aos {:.2}x, \
             kernel {:.2}x",
            s.model,
            s.agents,
            s.index,
            s.query_speedup,
            s.tick_speedup,
            s.incremental_speedup,
            s.soa_speedup,
            s.kernel_speedup
        );
    }
    for s in &report.skipped {
        println!("skipped: {s}");
    }
    print_table(
        "Cluster throughput — delta distribution, per-tick bytes by traffic class",
        &["model", "workers", "agents", "agents/s", "transfer B/t", "rep-full B/t", "rep-delta B/t", "delta/full"],
        &report
            .cluster
            .iter()
            .map(|c| {
                vec![
                    c.model.to_string(),
                    c.workers.to_string(),
                    c.actual_agents.to_string(),
                    tput(c.agents_per_sec),
                    format!("{:.0}", c.transfer_bytes_per_tick),
                    format!("{:.0}", c.replica_full_bytes_per_tick),
                    format!("{:.0}", c.replica_delta_bytes_per_tick),
                    format!("{:.3}", c.delta_over_full),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Scenario registry — one row per registered scenario (serial single node, default index)",
        &["scenario", "index", "agents", "query [agents/s]", "tick [agents/s]"],
        &report
            .scenarios
            .iter()
            .map(|s| {
                vec![
                    s.scenario.clone(),
                    format!("{:?}", s.index),
                    s.actual_agents.to_string(),
                    tput(s.query_agents_per_sec),
                    tput(s.tick_agents_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "BRASIL optimizer A/B — registered (optimized) scenario vs unoptimized twin",
        &[
            "scenario",
            "agents",
            "opt query [a/s]",
            "unopt query [a/s]",
            "opt speedup",
            "tick speedup",
            "cand. reduction",
        ],
        &report
            .opt
            .iter()
            .map(|o| {
                vec![
                    o.scenario.clone(),
                    o.actual_agents.to_string(),
                    tput(o.opt_query_agents_per_sec),
                    tput(o.unopt_query_agents_per_sec),
                    format!("{:.2}x", o.opt_speedup),
                    format!("{:.2}x", o.opt_tick_speedup),
                    format!("{:.2}x", o.candidate_reduction),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let json = throughput::to_json(&report, &cfg);
    std::fs::write(&out, json).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
    println!("wrote {out}");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn run_fig3(scale: Scale) {
    let rows = fig3(scale);
    print_table(
        "Figure 3 — traffic: total simulation time vs segment length",
        &["segment", "vehicles", "mitsim[s]", "brace-noidx[s]", "brace-idx[s]"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.segment),
                    r.agents.to_string(),
                    secs(r.mitsim_secs),
                    secs(r.noidx_secs),
                    secs(r.idx_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let pts = |f: fn(&brace_bench::Fig3Row) -> f64| rows.iter().map(|r| (r.segment, f(r))).collect::<Vec<_>>();
    let s_noidx = log_log_slope(&pts(|r| r.noidx_secs)).unwrap_or(f64::NAN);
    let s_idx = log_log_slope(&pts(|r| r.idx_secs)).unwrap_or(f64::NAN);
    let s_mitsim = log_log_slope(&pts(|r| r.mitsim_secs)).unwrap_or(f64::NAN);
    println!(
        "shape: growth exponents — noidx {s_noidx:.2} (paper: ~2, quadratic), \
         idx {s_idx:.2} (paper: ~1, log-linear), mitsim {s_mitsim:.2}; \
         mitsim fastest everywhere: {}",
        rows.iter().all(|r| r.mitsim_secs <= r.idx_secs)
    );
}

fn run_fig4(scale: Scale) {
    let rows = fig4(scale);
    print_table(
        "Figure 4 — fish: total simulation time vs visibility range",
        &["visibility", "noidx[s]", "idx[s]", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.visibility),
                    secs(r.noidx_secs),
                    secs(r.idx_secs),
                    format!("{:.2}x", r.noidx_secs / r.idx_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let first = rows.first().map(|r| r.noidx_secs / r.idx_secs).unwrap_or(0.0);
    let last = rows.last().map(|r| r.noidx_secs / r.idx_secs).unwrap_or(0.0);
    println!(
        "shape: index speedup {first:.2}x at smallest visibility, {last:.2}x at largest \
         (paper: 2-3x, shrinking as each probe returns more of the school)"
    );
}

fn run_fig5(scale: Scale) {
    let r = fig5(scale);
    print_table(
        &format!("Figure 5 — predator: effect inversion ({} agents, {} workers)", r.agents, r.workers),
        &["config", "throughput [agent-ticks/s]"],
        &[
            vec!["No-Opt".into(), tput(r.no_opt)],
            vec!["Idx-Only".into(), tput(r.idx_only)],
            vec!["Inv-Only".into(), tput(r.inv_only)],
            vec!["Idx+Inv".into(), tput(r.idx_inv)],
        ],
    );
    println!(
        "shape: inversion gain without index {:+.1}%, with index {:+.1}% (paper: >20% both); \
         effect traffic {} B (non-local) vs {} B (inverted eliminates the second reduce pass)",
        (r.inv_only / r.no_opt - 1.0) * 100.0,
        (r.idx_inv / r.idx_only - 1.0) * 100.0,
        r.effect_bytes_nonlocal,
        r.effect_bytes_inverted,
    );
}

fn run_fig6(scale: Scale) {
    let rows = fig6(scale);
    print_table(
        "Figure 6 — traffic: scale-up (size grows with workers)",
        &["workers", "vehicles", "throughput"],
        &rows.iter().map(|r| vec![r.workers.to_string(), r.agents.to_string(), tput(r.throughput)]).collect::<Vec<_>>(),
    );
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let ideal = last.workers as f64 / first.workers as f64;
        let got = last.throughput / first.throughput;
        println!(
            "shape: throughput grew {got:.2}x over {ideal:.0}x workers \
             (paper: near-linear; expect sub-ideal on shared-cache laptop cores)"
        );
    }
}

fn run_fig7(scale: Scale) {
    let rows = fig7(scale);
    print_table(
        "Figure 7 — fish: scale-up with/without load balancing",
        &["workers", "fish", "tput LB", "tput no-LB", "imbalance LB", "imbalance no-LB"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workers.to_string(),
                    r.agents.to_string(),
                    tput(r.tput_lb),
                    tput(r.tput_nolb),
                    format!("{:.2}", r.final_imbalance_lb),
                    format!("{:.2}", r.final_imbalance_nolb),
                ]
            })
            .collect::<Vec<_>>(),
    );
    if let Some(last) = rows.last() {
        println!(
            "shape: at {} workers LB/no-LB throughput ratio {:.2}x; final agent imbalance {:.2} (LB) vs {:.2} (no-LB) \
             (paper: no-LB collapses onto two nodes as the schools separate)",
            last.workers,
            last.tput_lb / last.tput_nolb,
            last.final_imbalance_lb,
            last.final_imbalance_nolb
        );
    }
}

fn run_fig8(scale: Scale) {
    let series = fig8(scale);
    let rows: Vec<Vec<String>> = series
        .epoch_secs_lb
        .iter()
        .zip(&series.epoch_secs_nolb)
        .enumerate()
        .map(|(i, (lb, nolb))| vec![i.to_string(), secs(*lb), secs(*nolb)])
        .collect();
    print_table("Figure 8 — fish: per-epoch time over epochs", &["epoch", "LB[s]", "no-LB[s]"], &rows);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let half = series.epoch_secs_nolb.len() / 2;
    println!(
        "shape: no-LB epoch time mean {:.3}s (first half) -> {:.3}s (second half), LB {:.3}s -> {:.3}s \
         (paper: LB flat, no-LB grows)",
        mean(&series.epoch_secs_nolb[..half]),
        mean(&series.epoch_secs_nolb[half..]),
        mean(&series.epoch_secs_lb[..half]),
        mean(&series.epoch_secs_lb[half..]),
    );
}

fn run_table2(scale: Scale) {
    let t = table2(scale);
    print_table(
        &format!("Table 2 — traffic validation RMSPE (segment {:.0}, {} observed ticks)", t.segment, t.observed_ticks),
        &["lane", "change freq", "Δmean rate", "avg density", "avg velocity", "mean vehicles"],
        &t.rows
            .iter()
            .map(|r| {
                vec![
                    format!("L{}", r.lane + 1),
                    format!("{:.2}%", r.change_freq_rmspe * 100.0),
                    format!("{:.2}%", t.mean_change_rate_err[r.lane] * 100.0),
                    format!("{:.2}%", r.density_rmspe * 100.0),
                    format!("{:.3}%", r.velocity_rmspe * 100.0),
                    format!("{:.1}", t.mean_vehicles_per_lane[r.lane]),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "shape: velocity and density agree within a few percent; windowed change-frequency RMSPE is \
         dominated by burst noise between independently-seeded engines, while the mean change rates \
         (Δmean) agree closely (paper: L4 change-freq 21.37% / density 19.72% vs ~5-10% elsewhere, \
         velocity 0.007%)"
    );
}
