//! The experiment runners, one per figure/table of the paper's §5.

use crate::{max_workers, Scale};
use brace_common::{AgentId, DetRng, Vec2};
use brace_core::{Agent, Behavior, Simulation};
use brace_mapreduce::{ClusterConfig, ClusterSim, LoadBalancer};
use brace_models::scripts;
use brace_models::validation::{compare, Table2Row, TrafficObserver};
use brace_models::{FishBehavior, FishParams, MitsimBaseline, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;
use std::sync::Arc;
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Best (smallest) wall time of `reps` runs of `f` — the standard defense
/// against scheduler noise on small shared machines; each rep advances the
/// simulation, which is fine for steady-state workloads.
fn best_of(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, secs) = timed(&mut f);
        best = best.min(secs);
    }
    best
}

// ---------------------------------------------------------------------------
// Figure 3 — traffic: indexing vs segment length
// ---------------------------------------------------------------------------

/// One segment-length point of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    pub segment: f64,
    pub agents: usize,
    /// Hand-coded baseline (MITSIM's role).
    pub mitsim_secs: f64,
    /// BRACE with the scan "index" — quadratic.
    pub noidx_secs: f64,
    /// BRACE with the KD-tree — log-linear.
    pub idx_secs: f64,
}

/// Figure 3: total simulation time vs segment length, three engines.
///
/// Expected shape: `noidx` grows ~quadratically with segment length, `idx`
/// ~linearly (log-linear), and `mitsim` is the fastest but of the same
/// growth order as `idx`.
pub fn fig3(scale: Scale) -> Vec<Fig3Row> {
    let (segments, ticks): (&[f64], u64) = match scale {
        Scale::Small => (&[2500.0, 5000.0, 10000.0, 20000.0], 30),
        Scale::Paper => (&[2500.0, 5000.0, 10000.0, 15000.0, 20000.0], 100),
    };
    segments
        .iter()
        .map(|&segment| {
            let params = TrafficParams { segment, ..TrafficParams::default() };
            let (_, mitsim_secs) = timed(|| {
                let mut sim = MitsimBaseline::new(params.clone(), 1);
                sim.run(ticks);
                sim.len()
            });
            let run_brace = |kind: IndexKind| {
                let behavior = TrafficBehavior::new(params.clone());
                let pop = behavior.population(1);
                let n = pop.len();
                let (_, secs) = timed(|| {
                    let mut sim = Simulation::builder(behavior).agents(pop).seed(1).index(kind).build().unwrap();
                    sim.run(ticks);
                });
                (n, secs)
            };
            let (agents, noidx_secs) = run_brace(IndexKind::Scan);
            let (_, idx_secs) = run_brace(IndexKind::KdTree);
            Fig3Row { segment, agents, mitsim_secs, noidx_secs, idx_secs }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 4 — fish: indexing vs visibility range
// ---------------------------------------------------------------------------

/// One visibility point of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    pub visibility: f64,
    pub noidx_secs: f64,
    pub idx_secs: f64,
}

/// Figure 4: total simulation time vs visibility range ρ, with and without
/// the KD-tree.
///
/// Expected shape: indexing wins by 2–3× at small ρ; the advantage shrinks
/// as ρ grows (each probe returns more of the school), exactly the paper's
/// observation.
pub fn fig4(scale: Scale) -> Vec<Fig4Row> {
    let (vis_points, n, ticks): (&[f64], usize, u64) = match scale {
        Scale::Small => (&[2.0, 4.0, 8.0, 16.0, 32.0], 2000, 10),
        Scale::Paper => (&[4.0, 8.0, 16.0, 32.0, 64.0, 128.0], 4000, 20),
    };
    // Constant density: the school radius grows with the population.
    let radius = (n as f64 / std::f64::consts::PI / 0.5).sqrt();
    vis_points
        .iter()
        .map(|&rho| {
            let run = |kind: IndexKind| {
                let params = FishParams { rho, school_radius: radius, ..FishParams::default() };
                let behavior = FishBehavior::new(params);
                let pop = behavior.population(n, 2);
                let (_, secs) = timed(|| {
                    let mut sim = Simulation::builder(behavior).agents(pop).seed(2).index(kind).build().unwrap();
                    sim.run(ticks);
                });
                secs
            };
            Fig4Row { visibility: rho, noidx_secs: run(IndexKind::Scan), idx_secs: run(IndexKind::KdTree) }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 5 — predator: effect inversion
// ---------------------------------------------------------------------------

/// Throughputs (agent-ticks/second) of the four Figure 5 configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    pub workers: usize,
    pub agents: usize,
    /// Scan index, non-local script (two reduce passes).
    pub no_opt: f64,
    /// KD-tree, non-local script.
    pub idx_only: f64,
    /// Scan index, effect-inverted script (single reduce pass).
    pub inv_only: f64,
    /// KD-tree + inversion.
    pub idx_inv: f64,
    /// Bytes of effect traffic in the non-local runs (zero when inverted).
    pub effect_bytes_nonlocal: u64,
    pub effect_bytes_inverted: u64,
}

/// Figure 5: the BRASIL predator script in its non-local form vs after
/// automatic effect inversion, with and without indexing, on the cluster.
///
/// Expected shape: `idx_only > no_opt`, `inv_only > no_opt`,
/// `idx_inv` highest; inversion buys a double-digit percentage in both
/// pairs (paper: > 20%) by eliminating the second reduce pass.
pub fn fig5(scale: Scale) -> Fig5Result {
    let (n, side, epochs, warmup): (usize, f64, u64, u64) = match scale {
        Scale::Small => (4000, 125.0, 12, 2),
        Scale::Paper => (10000, 200.0, 24, 4),
    };
    let workers = max_workers().min(4);
    let run = |inverted: bool, kind: IndexKind| -> (f64, u64) {
        let behavior = scripts::predator(inverted).expect("predator script compiles");
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(5);
        let agents: Vec<Agent> = (0..n)
            .map(|i| {
                let mut a =
                    Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, side), rng.range(0.0, side)), &schema);
                a.state[0] = rng.range(0.5, 1.5); // size
                a
            })
            .collect();
        let cfg = ClusterConfig {
            workers,
            epoch_len: 5,
            index: kind,
            seed: 5,
            space_x: (0.0, side),
            load_balance: false,
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), agents, cfg).unwrap();
        sim.run_epochs(warmup).unwrap();
        sim.reset_net();
        let wall = best_of(3, || sim.run_epochs(epochs).unwrap());
        let ticks = epochs * 5;
        let tput = (n as u64 * ticks) as f64 / wall;
        (tput, sim.stats().net.effects.bytes)
    };
    let (no_opt, eff_nl) = run(false, IndexKind::Scan);
    let (idx_only, _) = run(false, IndexKind::KdTree);
    let (inv_only, eff_inv) = run(true, IndexKind::Scan);
    let (idx_inv, _) = run(true, IndexKind::KdTree);
    Fig5Result {
        workers,
        agents: n,
        no_opt,
        idx_only,
        inv_only,
        idx_inv,
        effect_bytes_nonlocal: eff_nl,
        effect_bytes_inverted: eff_inv,
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — traffic scale-up
// ---------------------------------------------------------------------------

/// One worker-count point of Figure 6/7.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleUpRow {
    pub workers: usize,
    pub agents: usize,
    pub throughput: f64,
}

/// Figure 6: traffic scale-up — problem size grows linearly with workers,
/// so ideal scale-up is constant epoch time ⇒ linearly growing throughput.
///
/// Expected shape: throughput ≈ workers × single-worker throughput (the
/// road's uniform density keeps load balanced without any balancer).
pub fn fig6(scale: Scale) -> Vec<ScaleUpRow> {
    let (seg_per_worker, ticks): (f64, u64) = match scale {
        Scale::Small => (1500.0, 30),
        Scale::Paper => (5000.0, 100),
    };
    (1..=max_workers())
        .map(|workers| {
            let params =
                TrafficParams { segment: seg_per_worker * workers as f64, density: 0.04, ..TrafficParams::default() };
            let behavior = TrafficBehavior::new(params.clone());
            let pop = behavior.population(6);
            let agents = pop.len();
            let cfg = ClusterConfig {
                workers,
                epoch_len: 10,
                seed: 6,
                space_x: (0.0, params.segment),
                load_balance: false,
                ..ClusterConfig::default()
            };
            let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
            // Warm up once, then take the best of three measured windows.
            sim.run_ticks(ticks).unwrap();
            let wall = best_of(3, || sim.run_ticks(ticks).unwrap());
            ScaleUpRow { workers, agents, throughput: (agents as u64 * ticks) as f64 / wall }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 7 — fish scale-up, with and without load balancing
// ---------------------------------------------------------------------------

/// One worker-count point of Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    pub workers: usize,
    pub agents: usize,
    pub tput_lb: f64,
    pub tput_nolb: f64,
    pub final_imbalance_lb: f64,
    pub final_imbalance_nolb: f64,
}

/// The Figures 7/8 workload: a school led by informed individuals marches
/// in one direction, so its spatial distribution drifts out of the initial
/// partitioning. Without load balancing every fish eventually clamps into
/// the border partition (the paper's "load at all other nodes falls to
/// zero", degenerated to one node); with balancing the column boundaries
/// follow the school.
fn drifting_school(n: usize) -> (FishBehavior, Vec<Agent>) {
    // Migration configuration: every fish is informed of the travel
    // direction, so the whole school translates out of the initial
    // partitioning — the crispest form of the distribution drift that
    // Figures 7/8 study. (Two opposed informed classes, the paper's exact
    // configuration, produce the same effect over ≥4 partitions; see
    // `FishBehavior` tests for the school-splitting behavior itself.)
    let params = FishParams {
        informed_a: 1.0,
        informed_b: 0.0,
        omega: 2.0,
        jitter: 0.02,
        school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(),
        ..FishParams::default()
    };
    let behavior = FishBehavior::new(params);
    let pop = behavior.population(n, 7);
    (behavior, pop)
}

/// Drift for `drift_ticks`, then measure throughput over `measure_ticks` —
/// the paper's figures report the steady state *after* the distribution
/// has shifted, which is where balancing matters.
fn fish_cluster(n: usize, workers: usize, lb: bool, drift_ticks: u64, measure_ticks: u64) -> (f64, f64) {
    let (behavior, pop) = drifting_school(n);
    let radius = behavior.params().school_radius;
    let cfg = ClusterConfig {
        workers,
        epoch_len: 10,
        seed: 7,
        space_x: (-radius, radius),
        load_balance: lb,
        balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 2.0, epoch_len: 10 },
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
    sim.run_ticks(drift_ticks).unwrap();
    let (_, wall) = timed(|| sim.run_ticks(measure_ticks).unwrap());
    let tput = (n as u64 * measure_ticks) as f64 / wall;
    (tput, sim.stats().last_imbalance())
}

/// Figure 7: fish-school scale-up under a drifting spatial distribution.
///
/// Expected shape: with load balancing, throughput grows with workers;
/// without it the school concentrates on the border partition and extra
/// workers stop helping (the curves separate as workers grow). The
/// imbalance columns show the mechanism directly: no-LB approaches the
/// worker count (= everything on one node), LB stays near 1.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let (n_per_worker, drift, measure): (usize, u64, u64) = match scale {
        Scale::Small => (1500, 200, 100),
        Scale::Paper => (5000, 400, 200),
    };
    (1..=max_workers())
        .map(|workers| {
            let n = n_per_worker * workers;
            let (tput_lb, imb_lb) = fish_cluster(n, workers, true, drift, measure);
            let (tput_nolb, imb_nolb) = fish_cluster(n, workers, false, drift, measure);
            Fig7Row {
                workers,
                agents: n,
                tput_lb,
                tput_nolb,
                final_imbalance_lb: imb_lb,
                final_imbalance_nolb: imb_nolb,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8 — fish: epoch time over time
// ---------------------------------------------------------------------------

/// The two per-epoch wall-time series of Figure 8.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fig8Series {
    pub epoch_secs_lb: Vec<f64>,
    pub epoch_secs_nolb: Vec<f64>,
}

/// Figure 8: per-epoch simulation time as the fish distribution drifts.
///
/// Expected shape: flat with load balancing; growing without it toward the
/// one-worker-does-everything plateau.
pub fn fig8(scale: Scale) -> Fig8Series {
    let (n, epochs): (usize, u64) = match scale {
        Scale::Small => (4000, 30),
        Scale::Paper => (12000, 80),
    };
    let workers = max_workers().min(4);
    let run = |lb: bool| -> Vec<f64> {
        let (behavior, pop) = drifting_school(n);
        let radius = behavior.params().school_radius;
        let cfg = ClusterConfig {
            workers,
            epoch_len: 10,
            seed: 8,
            space_x: (-radius, radius),
            load_balance: lb,
            balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 2.0, epoch_len: 10 },
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
        sim.run_epochs(epochs).unwrap();
        sim.stats().epoch_wall_ns.iter().map(|&ns| ns as f64 / 1e9).collect()
    };
    Fig8Series { epoch_secs_lb: run(true), epoch_secs_nolb: run(false) }
}

// ---------------------------------------------------------------------------
// Table 2 — traffic validation
// ---------------------------------------------------------------------------

/// Table 2 plus per-lane context (mean vehicles per lane, as the paper
/// discusses for the underpopulated rightmost lane) and the relative error
/// of the mean lane-change rate. The windowed change-frequency RMSPE is
/// noisy by construction (change events are bursty and the two engines
/// evolve with independent randomness); the mean-rate error shows the
/// engines agree on the *rate* even when windows decorrelate.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    pub rows: Vec<Table2Row>,
    pub mean_vehicles_per_lane: Vec<f64>,
    /// |mean change rate (BRACE) − mean change rate (baseline)| / baseline.
    pub mean_change_rate_err: Vec<f64>,
    pub segment: f64,
    pub observed_ticks: u64,
}

/// Table 2: RMSPE of lane-change frequency, density and velocity between
/// the BRACE traffic behavior and the hand-coded baseline, per lane.
///
/// Expected shape: single-digit-to-low-tens percentage RMSPE on lanes 1–3;
/// the rightmost lane is worst because reluctance keeps it sparse and
/// relative errors blow up on small counts — the paper observes exactly
/// this on its Lane 4.
pub fn table2(scale: Scale) -> Table2 {
    let (segment, warmup, observe, window): (f64, u64, u64, u64) = match scale {
        Scale::Small => (5000.0, 100, 600, 60),
        Scale::Paper => (20000.0, 200, 1200, 100),
    };
    let params = TrafficParams { segment, ..TrafficParams::default() };
    let behavior = TrafficBehavior::new(params.clone());
    let pop = behavior.population(12);
    let mut brace_sim = Simulation::builder(behavior).agents(pop).seed(12).build().unwrap();
    let mut baseline = MitsimBaseline::new(params.clone(), 12);
    brace_sim.run(warmup);
    baseline.run(warmup);
    let mut obs_brace = TrafficObserver::new(&params, window);
    let mut obs_base = TrafficObserver::new(&params, window);
    for _ in 0..observe {
        obs_brace.observe_agents(&brace_sim.agents());
        obs_base.observe_baseline(&baseline);
        brace_sim.step();
        baseline.step();
    }
    let rows = compare(&obs_brace, &obs_base);
    let mean_vehicles_per_lane = (0..params.lanes).map(|l| obs_base.mean_density(l) * segment).collect();
    let mean_change_rate_err = (0..params.lanes)
        .map(|l| {
            let base = obs_base.mean_change_freq(l);
            if base == 0.0 {
                f64::NAN
            } else {
                (obs_brace.mean_change_freq(l) - base).abs() / base
            }
        })
        .collect();
    Table2 { rows, mean_vehicles_per_lane, mean_change_rate_err, segment, observed_ticks: observe }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment smoke tests at miniature scale live in the workspace
    // integration suite (`tests/paper_shapes.rs`), which asserts the
    // *shapes*. Here we only check plumbing that needs no simulation time.

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn max_workers_bounded() {
        let w = max_workers();
        assert!((1..=8).contains(&w));
    }
}
