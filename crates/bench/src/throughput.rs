//! The tick-throughput baseline: agents/second of the sharded executor,
//! serial vs parallel, per model / population / index kind — plus the two
//! ablations of the columnar refactor (SoA pool vs `Vec<Agent>` reference
//! path, incremental index maintenance vs rebuild-every-tick).
//!
//! `cargo run -p brace-bench --release -- tick-throughput` runs the matrix
//! and writes `BENCH_tick_throughput.json`, the perf trajectory future PRs
//! regress against (see ROADMAP "Open items"). `--quick` runs a miniature
//! matrix as a CI smoke test (panics, shape mismatches and gross
//! regressions on the perf path surface on every PR). The paper's figures
//! report relative shapes; this baseline pins absolute per-phase numbers
//! on the machine that produced it.

use brace_core::executor::reference_step;
use brace_core::{Agent, Behavior, IndexMaintenance, QueryKernel, TickExecutor};
use brace_mapreduce::{ClusterConfig, ClusterSim, DistributionMode};
use brace_models::{FishBehavior, FishParams, TrafficBehavior, TrafficParams};
use brace_scenario::{brasil_unoptimized, Registry, Runner};
use brace_spatial::IndexKind;
use std::sync::Arc;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    pub model: &'static str,
    /// Requested population size (actual sizes differ slightly for traffic,
    /// whose population derives from segment length × density).
    pub agents: usize,
    pub actual_agents: usize,
    pub index: IndexKind,
    /// `"serial"` (parallelism 1), `"parallel"` (the run's thread budget),
    /// `"rebuild"` (serial, index rebuilt every tick — the
    /// incremental-maintenance ablation), `"aos"` (the `Vec<Agent>`
    /// reference path with per-tick pool conversion — the SoA ablation) or
    /// `"scalar-kernel"` (serial with the per-row scalar probe loop — the
    /// batched-kernel ablation).
    pub mode: &'static str,
    /// Thread budget the executor ran with (serial/ablation rows report 1).
    pub parallelism: usize,
    /// `true` for heavy-tailed hotspot populations (Zipf-weighted cluster
    /// seeding packs most agents into a few dense index buckets — the
    /// adversarial case for the bucket filter kernels and the merge);
    /// `false` for the uniform-ish model-default populations.
    pub hotspot: bool,
    pub ticks: u64,
    pub index_build_ns: u64,
    pub query_ns: u64,
    pub update_ns: u64,
    /// Full index builds over the measured ticks (incremental rows stay at
    /// 0 once warmed; rebuild/aos rows build every tick).
    pub index_rebuilds: u64,
    /// Agent-ticks per second of query-phase time — the number the sharded
    /// executor exists to improve.
    pub query_agents_per_sec: f64,
    /// Agent-ticks per second of whole-tick time (index + query + update).
    pub tick_agents_per_sec: f64,
}

impl ThroughputRow {
    /// Agent-ticks per second over index maintenance + query time (the
    /// basis of the incremental-vs-rebuild comparison, where the build
    /// phase is exactly what changes).
    pub fn index_query_agents_per_sec(&self) -> f64 {
        let ns = self.index_build_ns + self.query_ns;
        if ns == 0 {
            0.0
        } else {
            self.query_agents_per_sec * self.query_ns as f64 / ns as f64
        }
    }
}

/// Configuration for [`tick_throughput`].
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Population sizes to measure (default 10k and 100k).
    pub agent_counts: Vec<usize>,
    /// Measured ticks per configuration (after warm-up).
    pub ticks: u64,
    pub warmup: u64,
    /// Thread budget for the parallel rows (`0` = all cores).
    pub parallelism: usize,
    /// Populations above this size skip [`IndexKind::Scan`] (quadratic: a
    /// single 100k-agent scan tick is ~1e10 distance checks). Skips are
    /// recorded in [`ThroughputReport::skipped`] rather than silently
    /// dropped.
    pub scan_cap: usize,
    /// Population size for the cluster-throughput section (`0` skips the
    /// section entirely).
    pub cluster_agents: usize,
    /// Worker counts for the cluster-throughput section (empty skips it).
    pub cluster_workers: Vec<usize>,
    /// Population size for the per-scenario registry section (`0` skips
    /// it). Smaller than the main matrix: the section's job is one
    /// comparable row per registered scenario — including the interpreted
    /// BRASIL workloads — not a deep sweep.
    pub scenario_agents: usize,
    /// Population size for the BRASIL optimizer A/B section (`0` skips
    /// it): every `brasil-*` scenario, optimized pipeline vs its
    /// unoptimized twin, same population and seed.
    pub opt_agents: usize,
    /// Population size for the hotspot section (`0` skips it): fish +
    /// traffic reseeded into Zipf-weighted clusters, KD-tree + grid,
    /// serial and scalar-kernel modes — the heavy-tailed density case the
    /// uniform matrix never exercises.
    pub hotspot_agents: usize,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            agent_counts: vec![10_000, 100_000],
            ticks: 3,
            warmup: 1,
            parallelism: 0,
            scan_cap: 20_000,
            cluster_agents: 20_000,
            cluster_workers: vec![1, 2, 4],
            scenario_agents: 5_000,
            opt_agents: 100_000,
            hotspot_agents: 100_000,
        }
    }
}

impl ThroughputConfig {
    /// The `--quick` CI smoke preset: one small population, two ticks —
    /// enough to drive every mode of the perf path end to end in seconds.
    pub fn quick() -> Self {
        ThroughputConfig {
            agent_counts: vec![2_000],
            ticks: 2,
            warmup: 1,
            parallelism: 2,
            scan_cap: 2_500,
            cluster_agents: 2_000,
            cluster_workers: vec![1, 2, 4],
            scenario_agents: 500,
            opt_agents: 500,
            hotspot_agents: 2_000,
        }
    }
}

/// Derived per-configuration comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    pub model: String,
    pub agents: usize,
    pub index: IndexKind,
    /// `true` when the underlying rows ran the heavy-tailed hotspot
    /// population. Hotspot comparisons measure only `kernel_speedup` (the
    /// phase dense buckets stress); the parallel/ablation columns are 0.0
    /// (not measured), never a real ratio.
    pub hotspot: bool,
    /// Parallel over serial, query-phase throughput.
    pub query_speedup: f64,
    /// Parallel over serial, whole-tick throughput.
    pub tick_speedup: f64,
    /// Incremental maintenance over rebuild-every-tick, on index+query
    /// throughput (the phases maintenance changes).
    pub incremental_speedup: f64,
    /// SoA pool executor over the `Vec<Agent>` reference path, whole-tick.
    /// Both sides run the scalar query kernel (the reference path has no
    /// batched mode), so the column isolates layout from the kernel gain.
    pub soa_speedup: f64,
    /// Batched lane kernels over the scalar per-row probe loop, on
    /// query-phase throughput (the phase the kernels change).
    pub kernel_speedup: f64,
    /// True when the matrix ran on a single visible core: the
    /// parallel-over-serial columns (`query_speedup`, `tick_speedup`) are
    /// then pure timing noise — threads time-slice one core — and must not
    /// be compared or regressed against. The serial-vs-serial columns
    /// (`incremental_speedup`, `soa_speedup`, `kernel_speedup`) stay
    /// meaningful.
    pub unreliable: bool,
}

/// One cluster-throughput configuration: the distributed runtime under
/// delta distribution, with per-tick network bytes split by traffic class
/// and the replica-byte ratio against the full-redistribution ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRow {
    pub model: &'static str,
    pub workers: usize,
    pub actual_agents: usize,
    /// Measured (post-warmup) ticks.
    pub ticks: u64,
    /// Agent-ticks per second of wall time across the measured epochs.
    pub agents_per_sec: f64,
    /// Per-tick network bytes by traffic class (measured epochs only).
    pub transfer_bytes_per_tick: f64,
    pub replica_full_bytes_per_tick: f64,
    pub replica_delta_bytes_per_tick: f64,
    pub effects_bytes_per_tick: f64,
    /// Replica bytes under delta distribution over replica bytes under
    /// full redistribution, same configuration — the headline saving of
    /// the pool-resident worker (≪ 1 in any steady state).
    pub delta_over_full: f64,
    /// True when the matrix ran on a single visible core: worker threads
    /// then time-slice one core, so `agents_per_sec` scaling across worker
    /// counts is timing noise. The byte columns (and `delta_over_full`)
    /// are counted, not timed, and stay exact.
    pub unreliable: bool,
}

/// One registry-scenario configuration: the scenario's default setup
/// driven through the backend-erased `Runner`, serial single node. Rows are
/// keyed by registry name, so a scenario lands in the baseline the moment
/// it is registered.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Registry name.
    pub scenario: String,
    /// Spatial index the scenario defaults to.
    pub index: IndexKind,
    pub actual_agents: usize,
    /// Measured (post-warmup) ticks.
    pub ticks: u64,
    /// Agent-ticks per second of query-phase time.
    pub query_agents_per_sec: f64,
    /// Agent-ticks per second of whole-tick time.
    pub tick_agents_per_sec: f64,
}

/// One BRASIL optimizer A/B configuration: the registered (optimized)
/// scenario against its [`brasil_unoptimized`] twin — same population,
/// seed, index and horizon, serial single node, batched kernel. The two
/// runs are bit-identical by contract (`tests/opt_equivalence.rs`), so
/// every delta here is pure optimizer effect: the probe-rect pushdown
/// shows up as `candidate_reduction`, CSE + lane emission as
/// `opt_speedup`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptRow {
    /// Registry name (`brasil-*`).
    pub scenario: String,
    pub index: IndexKind,
    pub actual_agents: usize,
    /// Measured (post-warmup) ticks.
    pub ticks: u64,
    pub opt_query_agents_per_sec: f64,
    pub opt_tick_agents_per_sec: f64,
    pub unopt_query_agents_per_sec: f64,
    pub unopt_tick_agents_per_sec: f64,
    /// Candidates the query phase visited over the measured ticks.
    pub opt_neighbor_visits: u64,
    pub unopt_neighbor_visits: u64,
    /// Optimized over unoptimized, query-phase throughput (the phase the
    /// optimizer changes — same basis as `kernel_speedup`).
    pub opt_speedup: f64,
    /// Optimized over unoptimized, whole-tick throughput.
    pub opt_tick_speedup: f64,
    /// Unoptimized over optimized neighbor visits: > 1 when
    /// visibility-predicate pushdown shrinks the probe rect, 1.0 when the
    /// scenario has no pushable predicate.
    pub candidate_reduction: f64,
}

/// The telemetry-overhead ablation: the headline row (fish at the largest
/// configured population, serial, KD-tree, batched kernel) timed twice —
/// once with the process-global telemetry flag off, once with it on. The
/// paired runs are bit-identical by contract
/// (`tests/telemetry_equivalence.rs`), so the delta is the full cost of
/// recording: four phase-timer clock reads plus a handful of relaxed
/// atomic adds per tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    pub model: &'static str,
    pub agents: usize,
    pub actual_agents: usize,
    pub index: IndexKind,
    /// Measured (post-warmup) ticks per side.
    pub ticks: u64,
    pub off_tick_agents_per_sec: f64,
    pub on_tick_agents_per_sec: f64,
    /// `(off − on) / off` as a percentage of whole-tick throughput.
    /// Negative values are timing noise in the enabled run's favor.
    pub overhead_pct: f64,
    /// True when the matrix ran on a single visible core. The comparison
    /// is serial-vs-serial so it stays directionally meaningful, but the
    /// noise floor on a time-sliced core can exceed the effect being
    /// measured — regression tooling must not hard-fail flagged rows.
    pub unreliable: bool,
}

/// The full measurement matrix plus derived speedups.
#[derive(Debug, Clone, Default)]
pub struct ThroughputReport {
    pub rows: Vec<ThroughputRow>,
    pub speedups: Vec<SpeedupRow>,
    /// The cluster-throughput section (distributed runtime).
    pub cluster: Vec<ClusterRow>,
    /// The per-scenario registry section (one row per registered scenario).
    pub scenarios: Vec<ScenarioRow>,
    /// The BRASIL optimizer A/B section (one row per `brasil-*` scenario).
    pub opt: Vec<OptRow>,
    /// The telemetry-overhead ablation (one headline row, off vs on).
    pub telemetry: Vec<TelemetryRow>,
    /// Configurations skipped with the reason (e.g. scan at 100k).
    pub skipped: Vec<String>,
    /// Cores visible to the process when the matrix ran.
    pub cores: usize,
}

fn fish_world(n: usize) -> (FishBehavior, Vec<Agent>) {
    // Constant density (as in Figure 4): the school radius grows with the
    // population so per-probe neighborhood size stays scale-independent.
    let params = FishParams { school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(), ..FishParams::default() };
    let behavior = FishBehavior::new(params);
    let pop = behavior.population(n, 42);
    (behavior, pop)
}

fn traffic_world(n: usize) -> (TrafficBehavior, Vec<Agent>) {
    let defaults = TrafficParams::default();
    // population = floor(segment × density) × lanes ⇒ pick segment for ≈ n.
    let segment = n as f64 / (defaults.density * defaults.lanes as f64);
    let params = TrafficParams { segment, ..defaults };
    let behavior = TrafficBehavior::new(params);
    let pop = behavior.population(42);
    (behavior, pop)
}

/// Reseed a population's positions into a heavy-tailed hotspot layout:
/// `HOTSPOT_CLUSTERS` cluster centers spread over the original bounding
/// box, each agent assigned by Zipf weight (cluster `k` draws ∝ 1/(k+1),
/// so the top cluster holds ~27% of the population) and offset from its
/// center by a normal perturbation of ~1/64 of the box extent. The result
/// packs most agents into a few dense index buckets — the adversarial case
/// for the bucket filter kernels and the k-way merge. Everything is a pure
/// function of `(seed, agent index)`, so rows are reproducible.
///
/// `cluster_y` keeps the y coordinate untouched when `false`: traffic
/// agents must stay on their lane line, so its hotspots are congestion
/// bands along the road, not 2-D blobs.
fn hotspotize(pop: &mut [Agent], seed: u64, cluster_y: bool) {
    const HOTSPOT_CLUSTERS: usize = 12;
    if pop.is_empty() {
        return;
    }
    let (mut lox, mut hix, mut loy, mut hiy) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for a in pop.iter() {
        lox = lox.min(a.pos.x);
        hix = hix.max(a.pos.x);
        loy = loy.min(a.pos.y);
        hiy = hiy.max(a.pos.y);
    }
    let (ex, ey) = ((hix - lox).max(f64::MIN_POSITIVE), (hiy - loy).max(f64::MIN_POSITIVE));
    let root = brace_common::DetRng::seed_from_u64(seed);
    let mut centers = root.stream(0xC3);
    let centers: Vec<(f64, f64)> =
        (0..HOTSPOT_CLUSTERS).map(|_| (centers.range(lox, hix), centers.range(loy, hiy))).collect();
    // Zipf CDF over cluster ranks: weight(k) ∝ 1/(k+1).
    let total: f64 = (0..HOTSPOT_CLUSTERS).map(|k| 1.0 / (k + 1) as f64).sum();
    let mut cdf = Vec::with_capacity(HOTSPOT_CLUSTERS);
    let mut acc = 0.0;
    for k in 0..HOTSPOT_CLUSTERS {
        acc += 1.0 / (k + 1) as f64 / total;
        cdf.push(acc);
    }
    for (i, a) in pop.iter_mut().enumerate() {
        let mut r = root.stream(i as u64 + 1);
        let u = r.unit();
        let k = cdf.iter().position(|&c| u < c).unwrap_or(HOTSPOT_CLUSTERS - 1);
        let (cx, cy) = centers[k];
        a.pos.x = (cx + r.normal() * ex / 64.0).clamp(lox, hix);
        if cluster_y {
            a.pos.y = (cy + r.normal() * ey / 64.0).clamp(loy, hiy);
        }
    }
}

fn fish_hotspot_world(n: usize) -> (FishBehavior, Vec<Agent>) {
    let (behavior, mut pop) = fish_world(n);
    hotspotize(&mut pop, 0xB07, true);
    (behavior, pop)
}

fn traffic_hotspot_world(n: usize) -> (TrafficBehavior, Vec<Agent>) {
    let (behavior, mut pop) = traffic_world(n);
    hotspotize(&mut pop, 0xB07, false);
    (behavior, pop)
}

struct MeasureCtx {
    model: &'static str,
    agents: usize,
    kind: IndexKind,
    mode: &'static str,
    parallelism: usize,
    hotspot: bool,
    warmup: u64,
    ticks: u64,
}

fn measure_exec<B: Behavior>(
    ctx: &MeasureCtx,
    behavior: B,
    pop: Vec<Agent>,
    maintenance: IndexMaintenance,
    kernel: QueryKernel,
) -> ThroughputRow {
    let actual = pop.len();
    let mut exec = TickExecutor::new(behavior, pop, ctx.kind, 42);
    exec.set_parallelism(ctx.parallelism);
    exec.set_index_maintenance(maintenance);
    exec.set_query_kernel(kernel);
    exec.run(ctx.warmup);
    exec.reset_metrics();
    let rebuilds_before = exec.index_rebuilds();
    exec.run(ctx.ticks);
    let m = exec.metrics();
    let per_sec = |ns: u64| if ns == 0 { 0.0 } else { m.agent_ticks as f64 / (ns as f64 / 1e9) };
    ThroughputRow {
        model: ctx.model,
        agents: ctx.agents,
        actual_agents: actual,
        index: ctx.kind,
        mode: ctx.mode,
        parallelism: ctx.parallelism,
        hotspot: ctx.hotspot,
        ticks: m.ticks,
        index_build_ns: m.index_build_ns,
        query_ns: m.query_ns,
        update_ns: m.update_ns,
        index_rebuilds: exec.index_rebuilds() - rebuilds_before,
        query_agents_per_sec: per_sec(m.query_ns),
        tick_agents_per_sec: per_sec(m.total_ns),
    }
}

/// The SoA ablation: run the `Vec<Agent>` reference path ([`reference_step`]
/// — per-tick pool conversion, fresh index build, serial phases), which is
/// what the executor's working representation would cost if `Vec<Agent>`
/// were still the source of truth.
fn measure_aos<B: Behavior>(ctx: &MeasureCtx, behavior: B, mut agents: Vec<Agent>) -> ThroughputRow {
    let actual = agents.len();
    let max_id = agents.iter().map(|a| a.id.raw()).max().map_or(0, |m| m + 1);
    let mut id_gen = brace_common::ids::AgentIdGen::from(max_id);
    let mut tick = 0u64;
    for _ in 0..ctx.warmup {
        reference_step(&behavior, &mut agents, ctx.kind, tick, 42, &mut id_gen);
        tick += 1;
    }
    let (mut build_ns, mut query_ns, mut update_ns, mut agent_ticks) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..ctx.ticks {
        agent_ticks += agents.len() as u64;
        let (qs, us) = reference_step(&behavior, &mut agents, ctx.kind, tick, 42, &mut id_gen);
        build_ns += qs.index_build_ns;
        query_ns += qs.query_ns;
        update_ns += us.update_ns;
        tick += 1;
    }
    let per_sec = |ns: u64| if ns == 0 { 0.0 } else { agent_ticks as f64 / (ns as f64 / 1e9) };
    ThroughputRow {
        model: ctx.model,
        agents: ctx.agents,
        actual_agents: actual,
        index: ctx.kind,
        mode: ctx.mode,
        parallelism: 1,
        hotspot: ctx.hotspot,
        ticks: ctx.ticks,
        index_build_ns: build_ns,
        query_ns,
        update_ns,
        index_rebuilds: ctx.ticks,
        query_agents_per_sec: per_sec(query_ns),
        tick_agents_per_sec: per_sec(build_ns + query_ns + update_ns),
    }
}

/// Measure one cluster configuration: one warmup epoch, then two measured
/// epochs with the network ledger reset in between; returns the row plus
/// the raw replica bytes so the caller can form the delta/full ratio.
fn measure_cluster(model: &'static str, workers: usize, n: usize, mode: DistributionMode) -> (ClusterRow, u64) {
    const EPOCH_LEN: u64 = 5;
    const MEASURED_EPOCHS: u64 = 2;
    let (behavior, pop, space_x): (Arc<dyn Behavior>, Vec<Agent>, (f64, f64)) = if model == "fish" {
        let (b, pop) = fish_world(n);
        let r = b.params().school_radius;
        (Arc::new(b), pop, (-r, r))
    } else {
        let (b, pop) = traffic_world(n);
        let seg = b.params().segment;
        (Arc::new(b), pop, (0.0, seg))
    };
    let actual = pop.len();
    let cfg = ClusterConfig {
        workers,
        epoch_len: EPOCH_LEN,
        seed: 42,
        space_x,
        load_balance: false,
        distribution: mode,
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(behavior, pop, cfg).expect("cluster config is valid");
    sim.run_epochs(1).expect("warmup epoch");
    sim.reset_net();
    let before = sim.stats();
    sim.run_epochs(MEASURED_EPOCHS).expect("measured epochs");
    let after = sim.stats();
    let ticks = MEASURED_EPOCHS * EPOCH_LEN;
    let wall_ns = after.wall_ns - before.wall_ns;
    let agent_ticks = after.agent_ticks - before.agent_ticks;
    let net = after.net; // reset before measurement, so this is measured-only
    let per_tick = |b: u64| b as f64 / ticks as f64;
    let row = ClusterRow {
        model,
        workers,
        actual_agents: actual,
        ticks,
        agents_per_sec: if wall_ns == 0 { 0.0 } else { agent_ticks as f64 / (wall_ns as f64 / 1e9) },
        transfer_bytes_per_tick: per_tick(net.transfer.bytes),
        replica_full_bytes_per_tick: per_tick(net.replica_full.bytes),
        replica_delta_bytes_per_tick: per_tick(net.replica_delta.bytes),
        effects_bytes_per_tick: per_tick(net.effects.bytes),
        delta_over_full: 0.0, // filled by the caller from the paired run
        unreliable: false,    // marked by `tick_throughput` when cores == 1
    };
    (row, net.replica_bytes())
}

/// The cluster-throughput section: fish + traffic at the configured
/// population over 1/2/4 workers, delta distribution measured against the
/// full-redistribution ablation for the replica-byte ratio.
pub fn cluster_throughput(cfg: &ThroughputConfig) -> Vec<ClusterRow> {
    let mut rows = Vec::new();
    if cfg.cluster_agents == 0 || cfg.cluster_workers.is_empty() {
        return rows;
    }
    for model in ["fish", "traffic"] {
        for &workers in &cfg.cluster_workers {
            let (mut row, delta_bytes) = measure_cluster(model, workers, cfg.cluster_agents, DistributionMode::Delta);
            if workers > 1 {
                let (_, full_bytes) = measure_cluster(model, workers, cfg.cluster_agents, DistributionMode::Full);
                row.delta_over_full = if full_bytes == 0 { 1.0 } else { delta_bytes as f64 / full_bytes as f64 };
            } else {
                row.delta_over_full = 1.0; // one worker ships nothing either way
            }
            rows.push(row);
        }
    }
    rows
}

/// The per-scenario registry section: every registered scenario at the
/// configured population, built and driven through the backend-erased
/// `Runner` facade (serial single node, the scenario's default index), one
/// row per registry name.
pub fn scenario_throughput(cfg: &ThroughputConfig) -> Vec<ScenarioRow> {
    let mut rows = Vec::new();
    if cfg.scenario_agents == 0 {
        return rows;
    }
    let registry = Registry::builtin();
    for scenario in registry.iter() {
        // One build serves both the row's metadata (index, actual size)
        // and the launch — BRASIL scenarios compile their script per
        // build, so `launch_with` avoids paying that twice. The explicit
        // seed keeps the inspected setup and the measured run coupled.
        let setup = scenario
            .build(Some(cfg.scenario_agents), brace_scenario::runner::DEFAULT_SEED)
            .unwrap_or_else(|e| panic!("scenario `{}` failed to build: {e}", scenario.name()));
        let index = setup.index;
        let actual_agents = setup.population.len();
        let mut handle = Runner::new(scenario)
            .launch_with(setup)
            .unwrap_or_else(|e| panic!("scenario `{}` failed to launch: {e}", scenario.name()));
        handle.run(cfg.warmup).expect("single-node warmup");
        handle.reset_metrics();
        handle.run(cfg.ticks).expect("single-node measurement");
        let m = handle.metrics().expect("single-node backend has metrics").clone();
        let per_sec = |ns: u64| if ns == 0 { 0.0 } else { m.agent_ticks as f64 / (ns as f64 / 1e9) };
        rows.push(ScenarioRow {
            scenario: scenario.name().to_string(),
            index,
            actual_agents,
            ticks: m.ticks,
            query_agents_per_sec: per_sec(m.query_ns),
            tick_agents_per_sec: per_sec(m.total_ns),
        });
    }
    rows
}

/// The BRASIL optimizer A/B section: every registered `brasil-*` scenario
/// at the configured population, optimized vs its unoptimized twin, on the
/// scenario's default index — serial, batched kernel, same seed, so the
/// only difference between the paired runs is the pass pipeline.
pub fn opt_throughput(cfg: &ThroughputConfig) -> Vec<OptRow> {
    let mut rows = Vec::new();
    if cfg.opt_agents == 0 {
        return rows;
    }
    let registry = Registry::builtin();
    for name in registry.names().into_iter().filter(|n| n.starts_with("brasil-")) {
        let measure = |scenario: &dyn brace_scenario::Scenario| -> (f64, f64, u64) {
            let setup = scenario
                .build(Some(cfg.opt_agents), 42)
                .unwrap_or_else(|e| panic!("scenario `{name}` failed to build: {e}"));
            let mut exec = TickExecutor::new(setup.behavior, setup.population, setup.index, 42);
            exec.run(cfg.warmup);
            exec.reset_metrics();
            exec.run(cfg.ticks);
            let m = exec.metrics();
            let per_sec = |ns: u64| if ns == 0 { 0.0 } else { m.agent_ticks as f64 / (ns as f64 / 1e9) };
            (per_sec(m.query_ns), per_sec(m.total_ns), m.neighbor_visits)
        };
        let optimized = registry.get(name).expect("registered scenario");
        let twin = brasil_unoptimized(name).expect("every brasil-* scenario has an unoptimized twin");
        let setup = optimized.build(Some(cfg.opt_agents), 42).expect("setup for row metadata");
        let (opt_q, opt_t, opt_visits) = measure(optimized);
        let (unopt_q, unopt_t, unopt_visits) = measure(twin.as_ref());
        rows.push(OptRow {
            scenario: name.to_string(),
            index: setup.index,
            actual_agents: setup.population.len(),
            ticks: cfg.ticks,
            opt_query_agents_per_sec: opt_q,
            opt_tick_agents_per_sec: opt_t,
            unopt_query_agents_per_sec: unopt_q,
            unopt_tick_agents_per_sec: unopt_t,
            opt_neighbor_visits: opt_visits,
            unopt_neighbor_visits: unopt_visits,
            opt_speedup: opt_q / unopt_q.max(1e-9),
            opt_tick_speedup: opt_t / unopt_t.max(1e-9),
            candidate_reduction: unopt_visits as f64 / (opt_visits as f64).max(1.0),
        });
    }
    rows
}

/// The telemetry-overhead ablation: time the headline fish configuration
/// (largest configured population, serial, KD-tree, batched kernel) with
/// the global telemetry flag off, then on. The executor captures the flag
/// at construction, so each side builds its own executor; the prior flag
/// state is restored afterwards. A few extra measured ticks push the
/// per-tick cost above the clock's noise floor on quick runs.
pub fn telemetry_overhead(cfg: &ThroughputConfig) -> Vec<TelemetryRow> {
    let Some(&n) = cfg.agent_counts.iter().max() else {
        return Vec::new();
    };
    let ticks = cfg.ticks.max(8);
    let was = brace_telemetry::enabled();
    let measure = |enabled: bool| -> ThroughputRow {
        brace_telemetry::set_enabled(enabled);
        let ctx = MeasureCtx {
            model: "fish",
            agents: n,
            kind: IndexKind::KdTree,
            mode: if enabled { "telemetry-on" } else { "telemetry-off" },
            parallelism: 1,
            hotspot: false,
            warmup: cfg.warmup,
            ticks,
        };
        let (behavior, pop) = fish_world(n);
        measure_exec(&ctx, behavior, pop, IndexMaintenance::Incremental, QueryKernel::Batched)
    };
    let off = measure(false);
    let on = measure(true);
    brace_telemetry::set_enabled(was);
    vec![TelemetryRow {
        model: "fish",
        agents: n,
        actual_agents: off.actual_agents,
        index: IndexKind::KdTree,
        ticks,
        off_tick_agents_per_sec: off.tick_agents_per_sec,
        on_tick_agents_per_sec: on.tick_agents_per_sec,
        overhead_pct: (1.0 - on.tick_agents_per_sec / off.tick_agents_per_sec.max(1e-9)) * 100.0,
        unreliable: false, // marked by `tick_throughput` when cores == 1
    }]
}

/// Run the measurement matrix over fish + traffic, every population size
/// and every index kind (scan capped per the config): serial, parallel,
/// and the two ablation modes.
pub fn tick_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel_threads = if cfg.parallelism == 0 { cores } else { cfg.parallelism };
    let mut report = ThroughputReport { cores, ..Default::default() };
    let kinds = [IndexKind::KdTree, IndexKind::Grid, IndexKind::Scan];
    for &n in &cfg.agent_counts {
        for kind in kinds {
            if kind == IndexKind::Scan && n > cfg.scan_cap {
                report.skipped.push(format!("scan index at {n} agents (quadratic; cap {})", cfg.scan_cap));
                continue;
            }
            for model in ["fish", "traffic"] {
                let run = |mode: &'static str, threads: usize| -> ThroughputRow {
                    let ctx = MeasureCtx {
                        model,
                        agents: n,
                        kind,
                        mode,
                        parallelism: threads,
                        hotspot: false,
                        warmup: cfg.warmup,
                        ticks: cfg.ticks,
                    };
                    let maintenance =
                        if mode == "rebuild" { IndexMaintenance::Rebuild } else { IndexMaintenance::Incremental };
                    let kernel = if mode == "scalar-kernel" { QueryKernel::Scalar } else { QueryKernel::Batched };
                    match (model, mode) {
                        ("fish", "aos") => {
                            let (b, pop) = fish_world(n);
                            measure_aos(&ctx, b, pop)
                        }
                        ("fish", _) => {
                            let (b, pop) = fish_world(n);
                            measure_exec(&ctx, b, pop, maintenance, kernel)
                        }
                        (_, "aos") => {
                            let (b, pop) = traffic_world(n);
                            measure_aos(&ctx, b, pop)
                        }
                        _ => {
                            let (b, pop) = traffic_world(n);
                            measure_exec(&ctx, b, pop, maintenance, kernel)
                        }
                    }
                };
                let serial = run("serial", 1);
                let parallel = run("parallel", parallel_threads);
                let rebuild = run("rebuild", 1);
                let aos = run("aos", 1);
                let scalar_kernel = run("scalar-kernel", 1);
                report.speedups.push(SpeedupRow {
                    model: model.to_string(),
                    agents: n,
                    index: kind,
                    hotspot: false,
                    query_speedup: parallel.query_agents_per_sec / serial.query_agents_per_sec.max(1e-9),
                    tick_speedup: parallel.tick_agents_per_sec / serial.tick_agents_per_sec.max(1e-9),
                    incremental_speedup: serial.index_query_agents_per_sec()
                        / rebuild.index_query_agents_per_sec().max(1e-9),
                    // scalar-kernel vs aos: both scalar probe loops, so
                    // this isolates SoA layout from the kernel effect.
                    soa_speedup: scalar_kernel.tick_agents_per_sec / aos.tick_agents_per_sec.max(1e-9),
                    kernel_speedup: serial.query_agents_per_sec / scalar_kernel.query_agents_per_sec.max(1e-9),
                    unreliable: false, // marked below when cores == 1
                });
                report.rows.push(serial);
                report.rows.push(parallel);
                report.rows.push(rebuild);
                report.rows.push(aos);
                report.rows.push(scalar_kernel);
            }
        }
    }
    // The hotspot section: fish + traffic reseeded into Zipf-weighted
    // clusters ([`hotspotize`]), KD-tree + grid, serial and scalar-kernel
    // modes. Dense buckets are the adversarial case for the bucket filter
    // kernels and the grid's k-way merge, so each pair also derives a
    // `kernel_speedup` row (`hotspot: true`; the parallel/ablation columns
    // stay 0.0 — not measured for this section).
    if cfg.hotspot_agents > 0 {
        let n = cfg.hotspot_agents;
        for kind in [IndexKind::KdTree, IndexKind::Grid] {
            for model in ["fish", "traffic"] {
                let run = |mode: &'static str| -> ThroughputRow {
                    let ctx = MeasureCtx {
                        model,
                        agents: n,
                        kind,
                        mode,
                        parallelism: 1,
                        hotspot: true,
                        warmup: cfg.warmup,
                        ticks: cfg.ticks,
                    };
                    let kernel = if mode == "scalar-kernel" { QueryKernel::Scalar } else { QueryKernel::Batched };
                    if model == "fish" {
                        let (b, pop) = fish_hotspot_world(n);
                        measure_exec(&ctx, b, pop, IndexMaintenance::Incremental, kernel)
                    } else {
                        let (b, pop) = traffic_hotspot_world(n);
                        measure_exec(&ctx, b, pop, IndexMaintenance::Incremental, kernel)
                    }
                };
                let serial = run("serial");
                let scalar_kernel = run("scalar-kernel");
                report.speedups.push(SpeedupRow {
                    model: model.to_string(),
                    agents: n,
                    index: kind,
                    hotspot: true,
                    query_speedup: 0.0,
                    tick_speedup: 0.0,
                    incremental_speedup: 0.0,
                    soa_speedup: 0.0,
                    kernel_speedup: serial.query_agents_per_sec / scalar_kernel.query_agents_per_sec.max(1e-9),
                    unreliable: false, // marked below when cores == 1
                });
                report.rows.push(serial);
                report.rows.push(scalar_kernel);
            }
        }
    }
    report.cluster = cluster_throughput(cfg);
    // Bench honesty: with one visible core there is no parallelism to
    // measure — every thread-parallel comparison is scheduler noise.
    // Mark those rows so the quick smoke and regression tooling skip
    // them instead of chasing phantom speedups (ROADMAP: "speedup rows
    // are noise" on 1-core containers).
    report.scenarios = scenario_throughput(cfg);
    report.opt = opt_throughput(cfg);
    report.telemetry = telemetry_overhead(cfg);
    if cores == 1 {
        for s in &mut report.speedups {
            s.unreliable = true;
        }
        for c in &mut report.cluster {
            c.unreliable = true;
        }
        for t in &mut report.telemetry {
            t.unreliable = true;
        }
    }
    report
}

fn index_name(kind: IndexKind) -> &'static str {
    match kind {
        IndexKind::Scan => "scan",
        IndexKind::KdTree => "kdtree",
        IndexKind::Grid => "grid",
    }
}

/// Render the report as the `BENCH_tick_throughput.json` document. Written
/// by hand (the offline build has no serde_json); the format is stable:
/// bump `schema_version` on layout changes. Version 2 added the `rebuild`
/// and `aos` ablation rows, the per-row `index_rebuilds` column and the
/// `incremental_speedup` / `soa_speedup` ablation columns. Version 3 added
/// the `scalar-kernel` ablation rows and the `kernel_speedup` column
/// (batched lane kernels over the scalar probe loop). Version 4 added the
/// `cluster` section: distributed-runtime throughput with per-tick bytes
/// split by traffic class and the `delta_over_full` replica-byte ratio.
/// Version 5 added the `scenarios` section: one row per scenario-registry
/// entry, keyed by registry name (`rows`/`speedups` stay keyed by the same
/// names for fish and traffic, so v4 comparisons carry over unchanged).
/// Version 6 added the `opt` section: the BRASIL optimizer A/B — every
/// `brasil-*` scenario, optimized pipeline vs its unoptimized twin, with
/// the `opt_speedup` / `opt_tick_speedup` ratios and the
/// `candidate_reduction` from visibility-predicate pushdown. Version 7
/// added the `unreliable` flag on `speedups` and `cluster` rows: `true`
/// when the matrix ran on one visible core, where thread-parallel
/// comparisons are timing noise — regression tooling must skip comparing
/// flagged rows. Version 8 added the `hotspot` population field on `rows`
/// and `speedups`: `true` for the heavy-tailed Zipf-clustered populations
/// (serial + scalar-kernel modes only; hotspot speedup rows measure only
/// `kernel_speedup`, with the parallel/ablation columns written as 0.0 —
/// not measured). Tooling must compare uniform rows against uniform and
/// hotspot against hotspot. Version 9 added the `telemetry` section: the
/// telemetry-overhead ablation — the headline fish row timed with the
/// global recording flag off vs on, with `overhead_pct` and the 1-core
/// `unreliable` marking (the paired runs are bit-identical by contract, so
/// the delta is pure recording cost).
pub fn to_json(report: &ThroughputReport, cfg: &ThroughputConfig) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 9,\n");
    out.push_str(&format!("  \"cores\": {},\n", report.cores));
    out.push_str(&format!("  \"measured_ticks\": {},\n", cfg.ticks));
    out.push_str(&format!("  \"warmup_ticks\": {},\n", cfg.warmup));
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"agents\": {}, \"actual_agents\": {}, \"index\": \"{}\", \
             \"mode\": \"{}\", \"parallelism\": {}, \"hotspot\": {}, \"ticks\": {}, \"index_build_ns\": {}, \
             \"query_ns\": {}, \"update_ns\": {}, \"index_rebuilds\": {}, \
             \"query_agents_per_sec\": {:.1}, \"tick_agents_per_sec\": {:.1}}}{}\n",
            r.model,
            r.agents,
            r.actual_agents,
            index_name(r.index),
            r.mode,
            r.parallelism,
            r.hotspot,
            r.ticks,
            r.index_build_ns,
            r.query_ns,
            r.update_ns,
            r.index_rebuilds,
            r.query_agents_per_sec,
            r.tick_agents_per_sec,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    for (i, s) in report.speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"agents\": {}, \"index\": \"{}\", \"hotspot\": {}, \
             \"query_speedup\": {:.3}, \"tick_speedup\": {:.3}, \
             \"incremental_speedup\": {:.3}, \"soa_speedup\": {:.3}, \"kernel_speedup\": {:.3}, \
             \"unreliable\": {}}}{}\n",
            s.model,
            s.agents,
            index_name(s.index),
            s.hotspot,
            s.query_speedup,
            s.tick_speedup,
            s.incremental_speedup,
            s.soa_speedup,
            s.kernel_speedup,
            s.unreliable,
            if i + 1 == report.speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cluster\": [\n");
    for (i, c) in report.cluster.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"workers\": {}, \"actual_agents\": {}, \"ticks\": {}, \
             \"agents_per_sec\": {:.1}, \"transfer_bytes_per_tick\": {:.1}, \
             \"replica_full_bytes_per_tick\": {:.1}, \"replica_delta_bytes_per_tick\": {:.1}, \
             \"effects_bytes_per_tick\": {:.1}, \"delta_over_full\": {:.4}, \"unreliable\": {}}}{}\n",
            c.model,
            c.workers,
            c.actual_agents,
            c.ticks,
            c.agents_per_sec,
            c.transfer_bytes_per_tick,
            c.replica_full_bytes_per_tick,
            c.replica_delta_bytes_per_tick,
            c.effects_bytes_per_tick,
            c.delta_over_full,
            c.unreliable,
            if i + 1 == report.cluster.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in report.scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"index\": \"{}\", \"actual_agents\": {}, \"ticks\": {}, \
             \"query_agents_per_sec\": {:.1}, \"tick_agents_per_sec\": {:.1}}}{}\n",
            s.scenario,
            index_name(s.index),
            s.actual_agents,
            s.ticks,
            s.query_agents_per_sec,
            s.tick_agents_per_sec,
            if i + 1 == report.scenarios.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"opt\": [\n");
    for (i, o) in report.opt.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"index\": \"{}\", \"actual_agents\": {}, \"ticks\": {}, \
             \"opt_query_agents_per_sec\": {:.1}, \"opt_tick_agents_per_sec\": {:.1}, \
             \"unopt_query_agents_per_sec\": {:.1}, \"unopt_tick_agents_per_sec\": {:.1}, \
             \"opt_neighbor_visits\": {}, \"unopt_neighbor_visits\": {}, \
             \"opt_speedup\": {:.3}, \"opt_tick_speedup\": {:.3}, \"candidate_reduction\": {:.3}}}{}\n",
            o.scenario,
            index_name(o.index),
            o.actual_agents,
            o.ticks,
            o.opt_query_agents_per_sec,
            o.opt_tick_agents_per_sec,
            o.unopt_query_agents_per_sec,
            o.unopt_tick_agents_per_sec,
            o.opt_neighbor_visits,
            o.unopt_neighbor_visits,
            o.opt_speedup,
            o.opt_tick_speedup,
            o.candidate_reduction,
            if i + 1 == report.opt.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"telemetry\": [\n");
    for (i, t) in report.telemetry.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"agents\": {}, \"actual_agents\": {}, \"index\": \"{}\", \
             \"ticks\": {}, \"off_tick_agents_per_sec\": {:.1}, \"on_tick_agents_per_sec\": {:.1}, \
             \"overhead_pct\": {:.3}, \"unreliable\": {}}}{}\n",
            t.model,
            t.agents,
            t.actual_agents,
            index_name(t.index),
            t.ticks,
            t.off_tick_agents_per_sec,
            t.on_tick_agents_per_sec,
            t.overhead_pct,
            t.unreliable,
            if i + 1 == report.telemetry.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"skipped\": [\n");
    for (i, s) in report.skipped.iter().enumerate() {
        out.push_str(&format!("    \"{}\"{}\n", s, if i + 1 == report.skipped.len() { "" } else { "," }));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_matrix_runs_and_serializes() {
        let cfg = ThroughputConfig {
            agent_counts: vec![300],
            ticks: 1,
            warmup: 0,
            parallelism: 2,
            scan_cap: 1_000,
            cluster_agents: 300,
            cluster_workers: vec![1, 2],
            scenario_agents: 150,
            opt_agents: 150,
            hotspot_agents: 300,
        };
        let report = tick_throughput(&cfg);
        // 1 size × 3 kinds × 2 models × 5 modes (uniform matrix), plus the
        // hotspot section: 2 kinds × 2 models × 2 modes.
        assert_eq!(report.rows.len(), 38);
        assert_eq!(report.speedups.len(), 10);
        assert!(report.skipped.is_empty());
        for mode in ["serial", "parallel", "rebuild", "aos", "scalar-kernel"] {
            assert!(report.rows.iter().any(|r| r.mode == mode), "missing mode {mode}");
        }
        // Hotspot section: serial + scalar-kernel rows per model × {kdtree,
        // grid}, and a kernel-only speedup row for each pair (the other
        // speedup columns are written as 0.0 — not measured).
        for model in ["fish", "traffic"] {
            for kind in [IndexKind::KdTree, IndexKind::Grid] {
                for mode in ["serial", "scalar-kernel"] {
                    let row = report
                        .rows
                        .iter()
                        .find(|r| r.hotspot && r.model == model && r.index == kind && r.mode == mode)
                        .unwrap_or_else(|| panic!("missing hotspot row {model}/{kind:?}/{mode}"));
                    assert!(row.tick_agents_per_sec > 0.0, "hotspot row {row:?} measured nothing");
                }
                let s = report
                    .speedups
                    .iter()
                    .find(|s| s.hotspot && s.model == model && s.index == kind)
                    .unwrap_or_else(|| panic!("missing hotspot speedup row {model}/{kind:?}"));
                assert!(s.kernel_speedup > 0.0, "{s:?}");
                assert_eq!((s.query_speedup, s.incremental_speedup, s.soa_speedup), (0.0, 0.0, 0.0), "{s:?}");
            }
        }
        assert!(report.rows.iter().filter(|r| !r.hotspot).count() == 30, "uniform matrix shrank");
        // Cluster section: 2 models × 2 worker counts.
        assert_eq!(report.cluster.len(), 4);
        for c in &report.cluster {
            assert!(c.agents_per_sec > 0.0, "cluster row {c:?} measured nothing");
        }
        // Scenario section: one row per registry entry, keyed by name.
        let registry = Registry::builtin();
        assert_eq!(report.scenarios.len(), registry.len());
        for name in registry.names() {
            let row = report
                .scenarios
                .iter()
                .find(|s| s.scenario == name)
                .unwrap_or_else(|| panic!("missing scenario row `{name}`"));
            assert!(row.tick_agents_per_sec > 0.0, "scenario row {row:?} measured nothing");
        }
        // Optimizer A/B section: one row per brasil-* scenario, with the
        // pushdown visible as a real candidate reduction on the car script
        // (its guard bounds the probe rect to leaders only).
        assert_eq!(report.opt.len(), 3, "one opt row per brasil-* scenario: {:?}", report.opt);
        for o in &report.opt {
            assert!(o.scenario.starts_with("brasil-"), "{o:?}");
            assert!(o.opt_tick_agents_per_sec > 0.0 && o.unopt_tick_agents_per_sec > 0.0, "{o:?}");
            assert!(o.opt_neighbor_visits > 0 && o.unopt_neighbor_visits > 0, "{o:?}");
        }
        let car = report.opt.iter().find(|o| o.scenario == "brasil-car").expect("car opt row");
        assert!(car.candidate_reduction > 1.2, "pushdown must shrink the car probe rect: {car:?}");
        // Telemetry-overhead ablation: one headline row, both sides timed,
        // flag restored. The overhead magnitude is asserted by the quick
        // smoke (where populations are big enough to time), not here.
        assert_eq!(report.telemetry.len(), 1, "{:?}", report.telemetry);
        let t = &report.telemetry[0];
        assert_eq!((t.model, t.agents), ("fish", 300));
        assert!(t.off_tick_agents_per_sec > 0.0 && t.on_tick_agents_per_sec > 0.0, "{t:?}");
        assert!(t.overhead_pct.is_finite(), "{t:?}");
        assert_eq!(t.unreliable, report.cores == 1);
        assert!(!brace_telemetry::enabled(), "ablation must restore the global flag");
        let json = to_json(&report, &cfg);
        assert!(json.contains("\"schema_version\": 9"));
        assert!(json.contains("\"overhead_pct\""));
        assert!(json.contains("\"off_tick_agents_per_sec\""));
        assert!(json.contains("\"hotspot\": true") && json.contains("\"hotspot\": false"));
        // The 1-core honesty marking: flags must be present, and set (on
        // every speedups/cluster row) exactly when one core was visible.
        let single_core = report.cores == 1;
        assert!(json.contains("\"unreliable\":"));
        assert!(report.speedups.iter().all(|s| s.unreliable == single_core), "{:?}", report.speedups);
        assert!(report.cluster.iter().all(|c| c.unreliable == single_core), "{:?}", report.cluster);
        assert!(json.contains("\"opt_speedup\""));
        assert!(json.contains("\"candidate_reduction\""));
        assert!(json.contains("\"scenario\": \"brasil-car\""));
        assert!(json.contains("\"scenario\": \"flock-obstacles\""));
        assert!(json.contains("\"model\": \"traffic\""));
        assert!(json.contains("\"incremental_speedup\""));
        assert!(json.contains("\"kernel_speedup\""));
        assert!(json.contains("\"mode\": \"aos\""));
        assert!(json.contains("\"mode\": \"scalar-kernel\""));
        assert!(json.contains("\"delta_over_full\""));
        assert!(json.contains("\"replica_delta_bytes_per_tick\""));
        assert!(json.ends_with("}\n"));
        // Crude balance check so the hand-rolled JSON stays well-formed.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn hotspot_seeding_is_heavy_tailed_deterministic_and_lane_preserving() {
        let (_, a) = fish_hotspot_world(2_000);
        let (_, b) = fish_hotspot_world(2_000);
        assert_eq!(a, b, "hotspot seeding must be a pure function of (seed, index)");
        // Heavy tail: bucket positions into a coarse 16×16 histogram over
        // the bounding box; the densest cell must hold far more than the
        // uniform share (1/256 ≈ 8 agents here — Zipf clustering puts
        // hundreds into the top cluster's cell).
        let (mut lox, mut hix, mut loy, mut hiy) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for ag in &a {
            lox = lox.min(ag.pos.x);
            hix = hix.max(ag.pos.x);
            loy = loy.min(ag.pos.y);
            hiy = hiy.max(ag.pos.y);
        }
        let mut hist = std::collections::HashMap::new();
        for ag in &a {
            let cx = (((ag.pos.x - lox) / (hix - lox) * 16.0) as i64).min(15);
            let cy = (((ag.pos.y - loy) / (hiy - loy) * 16.0) as i64).min(15);
            *hist.entry((cx, cy)).or_insert(0usize) += 1;
        }
        let top = hist.values().copied().max().unwrap();
        assert!(top > 10 * a.len() / 256, "densest cell holds {top}/{} — not heavy-tailed", a.len());
        // Traffic hotspots are congestion bands along the road: every
        // vehicle keeps its exact lane line (y untouched).
        let n = 1_000;
        let (_, uniform) = traffic_world(n);
        let (_, hot) = traffic_hotspot_world(n);
        assert_eq!(uniform.len(), hot.len());
        for (u, h) in uniform.iter().zip(&hot) {
            assert_eq!(u.id, h.id);
            assert_eq!(u.pos.y.to_bits(), h.pos.y.to_bits(), "lane line moved for {:?}", u.id);
        }
    }

    #[test]
    fn quick_preset_is_small() {
        let q = ThroughputConfig::quick();
        assert!(q.agent_counts.iter().all(|&n| n <= 5_000));
        assert!(q.ticks <= 2);
    }
}
