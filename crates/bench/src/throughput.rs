//! The tick-throughput baseline: agents/second of the sharded executor,
//! serial vs parallel, per model / population / index kind.
//!
//! `cargo run -p brace-bench --release -- tick-throughput` runs the matrix
//! and writes `BENCH_tick_throughput.json`, the perf trajectory future PRs
//! regress against (see ROADMAP "Open items"). The paper's figures report
//! relative shapes; this baseline pins absolute per-phase numbers on the
//! machine that produced it.

use brace_core::TickExecutor;
use brace_models::{FishBehavior, FishParams, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    pub model: &'static str,
    /// Requested population size (actual sizes differ slightly for traffic,
    /// whose population derives from segment length × density).
    pub agents: usize,
    pub actual_agents: usize,
    pub index: IndexKind,
    /// `"serial"` (parallelism 1) or `"parallel"` (the run's thread budget).
    pub mode: &'static str,
    /// Thread budget the executor ran with (serial rows report 1).
    pub parallelism: usize,
    pub ticks: u64,
    pub index_build_ns: u64,
    pub query_ns: u64,
    pub update_ns: u64,
    /// Agent-ticks per second of query-phase time — the number the sharded
    /// executor exists to improve.
    pub query_agents_per_sec: f64,
    /// Agent-ticks per second of whole-tick time (index + query + update).
    pub tick_agents_per_sec: f64,
}

/// Configuration for [`tick_throughput`].
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Population sizes to measure (default 10k and 100k).
    pub agent_counts: Vec<usize>,
    /// Measured ticks per configuration (after warm-up).
    pub ticks: u64,
    pub warmup: u64,
    /// Thread budget for the parallel rows (`0` = all cores).
    pub parallelism: usize,
    /// Populations above this size skip [`IndexKind::Scan`] (quadratic: a
    /// single 100k-agent scan tick is ~1e10 distance checks). Skips are
    /// recorded in [`ThroughputReport::skipped`] rather than silently
    /// dropped.
    pub scan_cap: usize,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig { agent_counts: vec![10_000, 100_000], ticks: 3, warmup: 1, parallelism: 0, scan_cap: 20_000 }
    }
}

/// The full measurement matrix plus derived speedups.
#[derive(Debug, Clone, Default)]
pub struct ThroughputReport {
    pub rows: Vec<ThroughputRow>,
    /// `(model, agents, index, query_speedup, tick_speedup)` — parallel
    /// over serial, per configuration.
    pub speedups: Vec<(String, usize, IndexKind, f64, f64)>,
    /// Configurations skipped with the reason (e.g. scan at 100k).
    pub skipped: Vec<String>,
    /// Cores visible to the process when the matrix ran.
    pub cores: usize,
}

fn fish_executor(n: usize, kind: IndexKind, parallelism: usize) -> TickExecutor<FishBehavior> {
    // Constant density (as in Figure 4): the school radius grows with the
    // population so per-probe neighborhood size stays scale-independent.
    let params = FishParams { school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(), ..FishParams::default() };
    let behavior = FishBehavior::new(params);
    let pop = behavior.population(n, 42);
    let mut exec = TickExecutor::new(behavior, pop, kind, 42);
    exec.set_parallelism(parallelism);
    exec
}

fn traffic_executor(n: usize, kind: IndexKind, parallelism: usize) -> TickExecutor<TrafficBehavior> {
    let defaults = TrafficParams::default();
    // population = floor(segment × density) × lanes ⇒ pick segment for ≈ n.
    let segment = n as f64 / (defaults.density * defaults.lanes as f64);
    let params = TrafficParams { segment, ..defaults };
    let behavior = TrafficBehavior::new(params);
    let pop = behavior.population(42);
    let mut exec = TickExecutor::new(behavior, pop, kind, 42);
    exec.set_parallelism(parallelism);
    exec
}

#[allow(clippy::too_many_arguments)] // a measurement descriptor, not an API
fn measure<B: brace_core::Behavior>(
    mut exec: TickExecutor<B>,
    model: &'static str,
    agents: usize,
    kind: IndexKind,
    mode: &'static str,
    parallelism: usize,
    warmup: u64,
    ticks: u64,
) -> ThroughputRow {
    let actual = exec.agents().len();
    exec.run(warmup);
    exec.reset_metrics();
    exec.run(ticks);
    let m = exec.metrics();
    let per_sec = |ns: u64| if ns == 0 { 0.0 } else { m.agent_ticks as f64 / (ns as f64 / 1e9) };
    ThroughputRow {
        model,
        agents,
        actual_agents: actual,
        index: kind,
        mode,
        parallelism,
        ticks: m.ticks,
        index_build_ns: m.index_build_ns,
        query_ns: m.query_ns,
        update_ns: m.update_ns,
        query_agents_per_sec: per_sec(m.query_ns),
        tick_agents_per_sec: per_sec(m.total_ns),
    }
}

/// Run the serial-vs-parallel matrix over fish + traffic, every population
/// size and every index kind (scan capped per the config).
pub fn tick_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel_threads = if cfg.parallelism == 0 { cores } else { cfg.parallelism };
    let mut report = ThroughputReport { cores, ..Default::default() };
    let kinds = [IndexKind::KdTree, IndexKind::Grid, IndexKind::Scan];
    for &n in &cfg.agent_counts {
        for kind in kinds {
            if kind == IndexKind::Scan && n > cfg.scan_cap {
                report.skipped.push(format!("scan index at {n} agents (quadratic; cap {})", cfg.scan_cap));
                continue;
            }
            for model in ["fish", "traffic"] {
                let run = |threads: usize, mode: &'static str| -> ThroughputRow {
                    match model {
                        "fish" => measure(
                            fish_executor(n, kind, threads),
                            "fish",
                            n,
                            kind,
                            mode,
                            threads,
                            cfg.warmup,
                            cfg.ticks,
                        ),
                        _ => measure(
                            traffic_executor(n, kind, threads),
                            "traffic",
                            n,
                            kind,
                            mode,
                            threads,
                            cfg.warmup,
                            cfg.ticks,
                        ),
                    }
                };
                let serial = run(1, "serial");
                let parallel = run(parallel_threads, "parallel");
                report.speedups.push((
                    model.to_string(),
                    n,
                    kind,
                    parallel.query_agents_per_sec / serial.query_agents_per_sec.max(1e-9),
                    parallel.tick_agents_per_sec / serial.tick_agents_per_sec.max(1e-9),
                ));
                report.rows.push(serial);
                report.rows.push(parallel);
            }
        }
    }
    report
}

fn index_name(kind: IndexKind) -> &'static str {
    match kind {
        IndexKind::Scan => "scan",
        IndexKind::KdTree => "kdtree",
        IndexKind::Grid => "grid",
    }
}

/// Render the report as the `BENCH_tick_throughput.json` document. Written
/// by hand (the offline build has no serde_json); the format is stable:
/// bump `schema_version` on layout changes.
pub fn to_json(report: &ThroughputReport, cfg: &ThroughputConfig) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"cores\": {},\n", report.cores));
    out.push_str(&format!("  \"measured_ticks\": {},\n", cfg.ticks));
    out.push_str(&format!("  \"warmup_ticks\": {},\n", cfg.warmup));
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"agents\": {}, \"actual_agents\": {}, \"index\": \"{}\", \
             \"mode\": \"{}\", \"parallelism\": {}, \"ticks\": {}, \"index_build_ns\": {}, \
             \"query_ns\": {}, \"update_ns\": {}, \"query_agents_per_sec\": {:.1}, \
             \"tick_agents_per_sec\": {:.1}}}{}\n",
            r.model,
            r.agents,
            r.actual_agents,
            index_name(r.index),
            r.mode,
            r.parallelism,
            r.ticks,
            r.index_build_ns,
            r.query_ns,
            r.update_ns,
            r.query_agents_per_sec,
            r.tick_agents_per_sec,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    for (i, (model, agents, kind, q, t)) in report.speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"agents\": {}, \"index\": \"{}\", \
             \"query_speedup\": {:.3}, \"tick_speedup\": {:.3}}}{}\n",
            model,
            agents,
            index_name(*kind),
            q,
            t,
            if i + 1 == report.speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"skipped\": [\n");
    for (i, s) in report.skipped.iter().enumerate() {
        out.push_str(&format!("    \"{}\"{}\n", s, if i + 1 == report.skipped.len() { "" } else { "," }));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_matrix_runs_and_serializes() {
        let cfg = ThroughputConfig { agent_counts: vec![300], ticks: 1, warmup: 0, parallelism: 2, scan_cap: 1_000 };
        let report = tick_throughput(&cfg);
        // 1 size × 3 kinds × 2 models × 2 modes.
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.speedups.len(), 6);
        assert!(report.skipped.is_empty());
        let json = to_json(&report, &cfg);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"model\": \"traffic\""));
        assert!(json.ends_with("}\n"));
        // Crude balance check so the hand-rolled JSON stays well-formed.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
