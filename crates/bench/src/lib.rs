//! Experiment harness regenerating every figure and table of the paper.
//!
//! Each `figN`/`tableN` function runs the corresponding experiment and
//! returns typed rows; the `paper` binary prints them, and the Criterion
//! benches reuse the same builders at micro scale. Absolute numbers are
//! machine-dependent — the *shape* (who wins, growth orders, crossovers)
//! is what reproduces the paper; each experiment's expected shape is
//! documented on its function and asserted in `tests/paper_shapes.rs`.

pub mod experiments;
pub mod table;
pub mod throughput;

pub use experiments::*;
pub use throughput::{tick_throughput, ThroughputConfig, ThroughputReport};

/// Scale presets: `Small` finishes in seconds per experiment (CI-friendly);
/// `Paper` approaches the paper's problem sizes (minutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Workers available for scale-up experiments: capped so laptop runs stay
/// honest (hyper-threads masquerading as nodes would flatten the curves).
pub fn max_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}
