//! Minimal fixed-width table printer for the `paper` binary.

/// Print a header + rows with columns padded to the widest cell.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8) + 2))
            .collect::<String>()
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(100)));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds with 3 significant decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format a throughput in agent-ticks/second.
pub fn tput(t: f64) -> String {
    if t >= 1e6 {
        format!("{:.2}M", t / 1e6)
    } else if t >= 1e3 {
        format!("{:.1}k", t / 1e3)
    } else {
        format!("{t:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tput_units() {
        assert_eq!(tput(2_500_000.0), "2.50M");
        assert_eq!(tput(12_345.0), "12.3k");
        assert_eq!(tput(99.0), "99");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
