//! Figure 7 microbenchmark: a skewed fish epoch with and without load
//! balancing. The population is pre-split into two distant schools — the
//! state the no-LB cluster drifts into — so the benchmark isolates the
//! steady-state cost difference. Full figure: `paper -- fig7`.

use brace_common::Vec2;
use brace_core::{Agent, Behavior};
use brace_mapreduce::{ClusterConfig, ClusterSim, LoadBalancer};
use brace_models::{FishBehavior, FishParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn split_population(n: usize) -> (FishBehavior, Vec<Agent>) {
    let params =
        FishParams { informed_a: 0.1, informed_b: 0.1, omega: 1.5, school_radius: 15.0, ..FishParams::default() };
    let behavior = FishBehavior::new(params);
    let mut pop = behavior.population(n, 7);
    // Pre-split: half the school sits far left, half far right.
    for (i, a) in pop.iter_mut().enumerate() {
        let offset = if i % 2 == 0 { -60.0 } else { 60.0 };
        a.pos += Vec2::new(offset, 0.0);
    }
    (behavior, pop)
}

fn bench_fig7(c: &mut Criterion) {
    let n = 3000;
    let mut group = c.benchmark_group("fig7_fish_epoch_skewed");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    for lb in [false, true] {
        let name = if lb { "lb" } else { "no_lb" };
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
            let (behavior, pop) = split_population(n);
            let cfg = ClusterConfig {
                workers: 4,
                epoch_len: 5,
                seed: 7,
                space_x: (-80.0, 80.0),
                load_balance: lb,
                balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 1.0, epoch_len: 5 },
                ..ClusterConfig::default()
            };
            let schema_ok = behavior.schema().visibility().is_finite();
            assert!(schema_ok);
            let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
            // Give the balancer (when enabled) a chance to react.
            sim.run_epochs(3).unwrap();
            b.iter(|| sim.run_epochs(1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
