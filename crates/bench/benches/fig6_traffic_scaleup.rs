//! Figure 6 microbenchmark: one traffic epoch with problem size scaled to
//! the worker count — flat time per epoch means ideal scale-up. Full
//! figure: `paper -- fig6`.

use brace_mapreduce::{ClusterConfig, ClusterSim};
use brace_models::{TrafficBehavior, TrafficParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(4);
    let mut group = c.benchmark_group("fig6_traffic_epoch_scaled");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    for workers in 1..=max {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            let params = TrafficParams { segment: 1200.0 * workers as f64, density: 0.04, ..TrafficParams::default() };
            let behavior = TrafficBehavior::new(params.clone());
            let pop = behavior.population(6);
            let cfg = ClusterConfig {
                workers,
                epoch_len: 5,
                seed: 6,
                space_x: (0.0, params.segment),
                load_balance: false,
                ..ClusterConfig::default()
            };
            let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
            sim.run_epochs(1).unwrap();
            b.iter(|| sim.run_epochs(1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
