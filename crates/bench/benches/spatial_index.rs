//! Spatial substrate microbenchmarks: index build and range-probe cost for
//! the three `SpatialIndex` implementations, across population sizes and
//! point distributions (uniform vs clustered — the fish-school case where
//! the KD-tree's adaptivity matters).

use brace_common::{DetRng, Rect, Vec2};
use brace_spatial::{KdTree, ScanIndex, SpatialIndex, UniformGrid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn uniform_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect()
}

fn clustered_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cx = if rng.chance(0.5) { 10.0 } else { 90.0 };
            (Vec2::new(cx + rng.normal(), 50.0 + rng.normal()), i as u32)
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));
    for n in [1000usize, 10_000] {
        let pts = uniform_points(n, 1);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &pts, |b, pts| {
            b.iter(|| KdTree::build(pts));
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &pts, |b, pts| {
            b.iter(|| UniformGrid::with_cell(pts, 5.0));
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &pts, |b, pts| {
            b.iter(|| ScanIndex::build(pts));
        });
    }
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_probe_all_agents");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));
    let n = 5000;
    for (dist, pts) in [("uniform", uniform_points(n, 2)), ("clustered", clustered_points(n, 2))] {
        let kd = KdTree::build(&pts);
        let grid = UniformGrid::with_cell(&pts, 5.0);
        let scan = ScanIndex::build(&pts);
        group.bench_with_input(BenchmarkId::new("kdtree", dist), &pts, |b, pts| {
            let mut out = Vec::new();
            b.iter(|| {
                for &(p, _) in pts.iter() {
                    out.clear();
                    kd.range(&Rect::centered(p, 2.5), &mut out);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("grid", dist), &pts, |b, pts| {
            let mut out = Vec::new();
            b.iter(|| {
                for &(p, _) in pts.iter() {
                    out.clear();
                    grid.range(&Rect::centered(p, 2.5), &mut out);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("scan", dist), &pts, |b, pts| {
            let mut out = Vec::new();
            b.iter(|| {
                // Scan is O(n) per probe; probe a 100-point sample so the
                // benchmark stays comparable in wall time.
                for &(p, _) in pts.iter().take(100) {
                    out.clear();
                    scan.range(&Rect::centered(p, 2.5), &mut out);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_probe);
criterion_main!(benches);
