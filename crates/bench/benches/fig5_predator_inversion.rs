//! Figure 5 microbenchmark: one cluster epoch of the BRASIL predator
//! script in its four configurations (index × inversion). Full figure:
//! `paper -- fig5`.

use brace_common::{AgentId, DetRng, Vec2};
use brace_core::{Agent, Behavior};
use brace_mapreduce::{ClusterConfig, ClusterSim};
use brace_models::scripts;
use brace_spatial::IndexKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn build(inverted: bool, kind: IndexKind, n: usize) -> ClusterSim {
    let behavior = scripts::predator(inverted).expect("script compiles");
    let schema = behavior.schema().clone();
    let side = 90.0;
    let mut rng = DetRng::seed_from_u64(5);
    let agents: Vec<Agent> = (0..n)
        .map(|i| {
            let mut a =
                Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, side), rng.range(0.0, side)), &schema);
            a.state[0] = rng.range(0.5, 1.5);
            a
        })
        .collect();
    let cfg = ClusterConfig {
        workers: 4,
        epoch_len: 2,
        index: kind,
        seed: 5,
        space_x: (0.0, side),
        load_balance: false,
        ..ClusterConfig::default()
    };
    ClusterSim::new(Arc::new(behavior), agents, cfg).unwrap()
}

fn bench_fig5(c: &mut Criterion) {
    let n = 2000;
    let mut group = c.benchmark_group("fig5_predator_epoch");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    let configs = [
        ("no_opt", false, IndexKind::Scan),
        ("idx_only", false, IndexKind::KdTree),
        ("inv_only", true, IndexKind::Scan),
        ("idx_inv", true, IndexKind::KdTree),
    ];
    for (name, inverted, kind) in configs {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
            let mut sim = build(inverted, kind, n);
            sim.run_epochs(1).unwrap();
            b.iter(|| sim.run_epochs(1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
