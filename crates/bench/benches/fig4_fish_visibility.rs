//! Figure 4 microbenchmark: one fish tick, scan vs KD-tree, across
//! visibility ranges. Full figure: `paper -- fig4`.

use brace_core::Simulation;
use brace_models::{FishBehavior, FishParams};
use brace_spatial::IndexKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let n = 1500;
    let radius = (n as f64 / std::f64::consts::PI / 0.5).sqrt();
    let mut group = c.benchmark_group("fig4_fish_tick");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    for rho in [2.0, 8.0, 32.0] {
        for (name, kind) in [("noidx", IndexKind::Scan), ("idx", IndexKind::KdTree)] {
            group.bench_with_input(BenchmarkId::new(name, rho as u64), &rho, |b, &rho| {
                let behavior = FishBehavior::new(FishParams { rho, school_radius: radius, ..FishParams::default() });
                let pop = behavior.population(n, 2);
                let mut sim = Simulation::builder(behavior).agents(pop).seed(2).index(kind).build().unwrap();
                sim.run(2);
                b.iter(|| sim.step());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
