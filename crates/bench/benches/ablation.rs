//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Collocation** — map/reduce hand-offs via memory vs forced through
//!   the codec + ledger (the paper's §3.3 collocation argument).
//! * **Epoch length** — master coordination amortization: shorter epochs
//!   mean more control traffic and more frequent balancing decisions.
//! * **Index choice on a clustered workload** — KD-tree vs uniform grid vs
//!   scan on the fish school.

use brace_core::Simulation;
use brace_mapreduce::{ClusterConfig, ClusterSim};
use brace_models::{FishBehavior, FishParams, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn traffic_cluster(collocation: bool, epoch_len: u64) -> ClusterSim {
    let params = TrafficParams { segment: 3000.0, density: 0.04, ..TrafficParams::default() };
    let behavior = TrafficBehavior::new(params.clone());
    let pop = behavior.population(3);
    let cfg = ClusterConfig {
        workers: 4,
        epoch_len,
        seed: 3,
        space_x: (0.0, params.segment),
        load_balance: false,
        collocation,
        ..ClusterConfig::default()
    };
    ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap()
}

fn bench_collocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_collocation");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(3));
    for (name, collocation) in [("collocated", true), ("no_collocation", false)] {
        group.bench_function(name, |b| {
            let mut sim = traffic_cluster(collocation, 5);
            sim.run_epochs(1).unwrap();
            b.iter(|| sim.run_epochs(1).unwrap());
        });
    }
    group.finish();
}

fn bench_epoch_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_epoch_length");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(3));
    for epoch_len in [1u64, 5, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(epoch_len), &epoch_len, |b, &epoch_len| {
            let mut sim = traffic_cluster(true, epoch_len);
            sim.run_epochs(1).unwrap();
            // Measure a fixed 20 ticks regardless of epoch length, so the
            // comparison isolates coordination overhead per tick.
            b.iter(|| sim.run_epochs(20 / epoch_len.min(20)).unwrap());
        });
    }
    group.finish();
}

/// The paper's "planned future work": nearest-neighbor indexing to reach
/// parity with MITSIM's hand-coded lookup. Compares one traffic tick of
/// the baseline, BRACE with the fixed-lookahead range probe, and BRACE
/// with the k-NN probe.
fn bench_knn_parity(c: &mut Criterion) {
    use brace_models::MitsimBaseline;
    let params = |knn| TrafficParams { segment: 4000.0, knn, ..TrafficParams::default() };
    let mut group = c.benchmark_group("ablation_knn_parity");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));
    group.bench_function("mitsim_baseline", |b| {
        let mut sim = MitsimBaseline::new(params(None), 9);
        sim.run(5);
        b.iter(|| sim.step());
    });
    group.bench_function("brace_range_probe", |b| {
        let behavior = TrafficBehavior::new(params(None));
        let pop = behavior.population(9);
        let mut sim = Simulation::builder(behavior).agents(pop).seed(9).build().unwrap();
        sim.run(5);
        b.iter(|| sim.step());
    });
    group.bench_function("brace_knn_probe", |b| {
        let behavior = TrafficBehavior::new(params(Some(12)));
        let pop = behavior.population(9);
        let mut sim = Simulation::builder(behavior).agents(pop).seed(9).build().unwrap();
        sim.run(5);
        b.iter(|| sim.step());
    });
    group.finish();
}

fn bench_index_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index_on_clustered_fish");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));
    let n = 2000;
    for (name, kind) in [("kdtree", IndexKind::KdTree), ("grid", IndexKind::Grid), ("scan", IndexKind::Scan)] {
        group.bench_function(name, |b| {
            let params = FishParams { school_radius: 12.0, ..FishParams::default() };
            let behavior = FishBehavior::new(params);
            let pop = behavior.population(n, 4);
            let mut sim = Simulation::builder(behavior).agents(pop).seed(4).index(kind).build().unwrap();
            sim.run(2);
            b.iter(|| sim.step());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collocation, bench_epoch_length, bench_index_choice, bench_knn_parity);
criterion_main!(benches);
