//! Table 2 microbenchmark: the cost of the validation pipeline itself —
//! observing a tick of each engine and computing the RMSPE comparison.
//! The actual Table 2 numbers come from `paper -- table2`.

use brace_core::Simulation;
use brace_models::validation::{compare, TrafficObserver};
use brace_models::{MitsimBaseline, TrafficBehavior, TrafficParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let params = TrafficParams { segment: 2000.0, ..TrafficParams::default() };
    let mut group = c.benchmark_group("table2_validation");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));

    group.bench_function("observe_brace_tick", |b| {
        let behavior = TrafficBehavior::new(params.clone());
        let pop = behavior.population(1);
        let mut sim = Simulation::builder(behavior).agents(pop).seed(1).build().unwrap();
        sim.run(10);
        // Materialize once: the benchmark measures the observer, not the
        // pool -> record conversion at the serialization boundary.
        let agents = sim.agents();
        let mut obs = TrafficObserver::new(&params, 10);
        b.iter(|| {
            obs.observe_agents(&agents);
        });
    });

    group.bench_function("observe_baseline_tick", |b| {
        let mut sim = MitsimBaseline::new(params.clone(), 1);
        sim.run(10);
        let mut obs = TrafficObserver::new(&params, 10);
        b.iter(|| {
            obs.observe_baseline(&sim);
        });
    });

    group.bench_function("compare_engines_50_ticks", |b| {
        b.iter(|| {
            let behavior = TrafficBehavior::new(params.clone());
            let pop = behavior.population(2);
            let mut brace_sim = Simulation::builder(behavior).agents(pop).seed(2).build().unwrap();
            let mut base = MitsimBaseline::new(params.clone(), 2);
            let mut oa = TrafficObserver::new(&params, 10);
            let mut ob = TrafficObserver::new(&params, 10);
            for _ in 0..50 {
                oa.observe_agents(&brace_sim.agents());
                ob.observe_baseline(&base);
                brace_sim.step();
                base.step();
            }
            compare(&oa, &ob)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
