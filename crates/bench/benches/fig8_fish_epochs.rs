//! Figure 8 microbenchmark: early-epoch vs late-epoch cost without load
//! balancing (the growth the figure plots), and the same with balancing
//! (flat). Full series: `paper -- fig8`.

use brace_mapreduce::{ClusterConfig, ClusterSim, LoadBalancer};
use brace_models::{FishBehavior, FishParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn cluster(n: usize, lb: bool) -> ClusterSim {
    let params = FishParams {
        informed_a: 0.1,
        informed_b: 0.1,
        omega: 1.5,
        jitter: 0.02,
        school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(),
        ..FishParams::default()
    };
    let behavior = FishBehavior::new(params.clone());
    let pop = behavior.population(n, 8);
    let cfg = ClusterConfig {
        workers: 4,
        epoch_len: 5,
        seed: 8,
        space_x: (-params.school_radius, params.school_radius),
        load_balance: lb,
        balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 1.0, epoch_len: 5 },
        ..ClusterConfig::default()
    };
    ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap()
}

fn bench_fig8(c: &mut Criterion) {
    let n = 2500;
    let mut group = c.benchmark_group("fig8_fish_epoch_over_time");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(3));
    for (name, lb, drift_epochs) in
        [("early_no_lb", false, 0u64), ("late_no_lb", false, 20), ("early_lb", true, 0), ("late_lb", true, 20)]
    {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
            let mut sim = cluster(n, lb);
            // Let the schools drift for `drift_epochs` before measuring.
            if drift_epochs > 0 {
                sim.run_epochs(drift_epochs).unwrap();
            }
            b.iter(|| sim.run_epochs(1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
