//! Figure 3 microbenchmark: one traffic tick per engine per segment length.
//!
//! The full figure (total sim time across many ticks and longer segments)
//! comes from `cargo run --release -p brace-bench --bin paper -- fig3`;
//! this bench tracks the per-tick costs Criterion-style so regressions in
//! any of the three engines are caught in isolation.

use brace_core::Simulation;
use brace_models::{MitsimBaseline, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn params(segment: f64) -> TrafficParams {
    TrafficParams { segment, ..TrafficParams::default() }
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_traffic_tick");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    for segment in [1000.0, 2000.0, 4000.0] {
        group.bench_with_input(BenchmarkId::new("mitsim", segment as u64), &segment, |b, &s| {
            let mut sim = MitsimBaseline::new(params(s), 1);
            sim.run(5); // settle
            b.iter(|| sim.step());
        });
        for (name, kind) in [("brace-noidx", IndexKind::Scan), ("brace-idx", IndexKind::KdTree)] {
            group.bench_with_input(BenchmarkId::new(name, segment as u64), &segment, |b, &s| {
                let behavior = TrafficBehavior::new(params(s));
                let pop = behavior.population(1);
                let mut sim = Simulation::builder(behavior).agents(pop).seed(1).index(kind).build().unwrap();
                sim.run(5);
                b.iter(|| sim.step());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
