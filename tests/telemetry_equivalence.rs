//! Telemetry observes, never perturbs: with recording enabled, every
//! scenario's conformance run — single-node and 2-worker cluster — must
//! produce checksums bit-identical to the same run with telemetry off.
//!
//! This is its own test binary because the enable flag is process-global:
//! flipping it here can never race another suite's expectations. The two
//! tests below still share the flag with each other, so they serialize
//! behind one mutex and restore the prior state on drop.

use brace_scenario::{Backend, Registry, Runner};
use std::sync::{Mutex, MutexGuard};

static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Holds the flag lock and restores the pre-test flag state on drop.
struct FlagGuard {
    was: bool,
    _lock: MutexGuard<'static, ()>,
}

fn flag_lock() -> FlagGuard {
    let lock = FLAG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    FlagGuard { was: brace_telemetry::enabled(), _lock: lock }
}

impl Drop for FlagGuard {
    fn drop(&mut self) {
        brace_telemetry::set_enabled(self.was);
    }
}

const TICKS: u64 = 10;

/// Run `scenario`'s conformance form on `backend` and return the checksum.
fn checksum(registry: &Registry, name: &str, backend: Backend) -> u64 {
    let scenario = registry.get(name).expect("registry scenario");
    Runner::new(scenario)
        .conformance()
        .backend(backend)
        .run(TICKS)
        .unwrap_or_else(|e| panic!("`{name}` failed: {e}"))
        .checksum
}

#[test]
fn telemetry_on_and_off_agree_bit_for_bit_across_the_registry() {
    let _g = flag_lock();
    let registry = Registry::builtin();
    for scenario in registry.iter() {
        let name = scenario.name();
        for backend in [Backend::single(), Backend::cluster(2)] {
            brace_telemetry::set_enabled(false);
            let off = checksum(&registry, name, backend.clone());
            brace_telemetry::set_enabled(true);
            let on = checksum(&registry, name, backend.clone());
            assert_eq!(
                off,
                on,
                "`{name}` on backend `{}` changed its checksum when telemetry was enabled",
                backend.label()
            );
        }
    }
}

/// The enabled runs above are not silently no-ops: an enabled run must
/// actually move the executor counters and phase histograms.
#[test]
fn enabled_runs_record_into_the_registry() {
    let _g = flag_lock();
    brace_telemetry::set_enabled(true);
    brace_telemetry::reset();
    let registry = Registry::builtin();
    let scenario = registry.get("epidemic").unwrap();
    Runner::new(scenario).conformance().run(TICKS).unwrap();
    let text = brace_telemetry::render_prometheus();
    let value = |metric: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap_or_else(|| panic!("`{metric}` missing from render"))
            .parse()
            .expect("metric value is an integer")
    };
    assert!(value("brace_executor_ticks_total") >= TICKS, "{text}");
    assert!(value("brace_phase_query_ns_count") >= TICKS);
    assert!(value("brace_phase_update_ns_count") >= TICKS);
    assert!(value("brace_executor_neighbor_visits_total") > 0, "an epidemic run visits neighbors");
    brace_telemetry::reset();
}
