//! The registry-driven conformance suite: **every** registered scenario
//! runs through the one `Runner` facade on both backends, and the cluster
//! must reproduce the single-node world bit for bit.
//!
//! This is the test that makes future scenario PRs cheap: register a
//! scenario and it is automatically driven through the single-node
//! executor and a 2-worker cluster on its
//! [`Scenario::conformance`](brace::scenario::Scenario::conformance)
//! configuration, checksummed, equality-asserted, and run through its own
//! post-run sanity checks ([`Runner::run`] applies them). Nothing here
//! names an individual scenario except the committed golden constants for
//! the two registry-era workloads.
//!
//! Golden constants: regenerate with
//! `cargo test --test scenario_conformance -- --nocapture` after a
//! deliberate model change (the failing assert prints actuals), and say so
//! in the PR — the same protocol as `tests/golden_tick.rs`.

use brace::scenario::{Backend, Registry, Runner};

/// Conformance horizon: enough ticks for real boundary traffic (every
/// builtin's population spans both partitions within visibility of the
/// split) while keeping registry × backends CI-cheap.
const TICKS: u64 = 20;
const SEED: u64 = 42;

fn run(scenario: &dyn brace::scenario::Scenario, backend: Backend) -> brace::scenario::RunReport {
    Runner::new(scenario)
        .seed(SEED)
        .conformance()
        .backend(backend)
        .run(TICKS)
        .unwrap_or_else(|e| panic!("scenario `{}` failed: {e}", scenario.name()))
}

/// The tentpole invariant: cluster ≡ single node, bitwise, for every
/// registered scenario's conformance configuration.
#[test]
fn every_scenario_cluster_matches_single_node_bitwise() {
    let registry = Registry::builtin();
    assert!(registry.len() >= 8, "catalogue shrank: {:?}", registry.names());
    for scenario in registry.iter() {
        let single = run(scenario, Backend::single());
        let cluster = run(scenario, Backend::cluster(2));
        assert_eq!(
            single.checksum,
            cluster.checksum,
            "scenario `{}`: 2-worker cluster diverged from single node \
             (single {:#018X}, cluster {:#018X})",
            scenario.name(),
            single.checksum,
            cluster.checksum
        );
        assert_eq!(single.agents, cluster.agents, "scenario `{}` population diverged", scenario.name());
        assert!(single.agents > 0, "scenario `{}` conformance world is empty", scenario.name());
    }
}

/// Worker count is unobservable too: 3 workers reproduce the same bits
/// (spot-checked on the two registry-era scenarios, whose goldens are
/// pinned below).
#[test]
fn worker_count_is_unobservable_for_new_scenarios() {
    let registry = Registry::builtin();
    for name in ["epidemic", "flock-obstacles"] {
        let scenario = registry.get(name).unwrap();
        let single = run(scenario, Backend::single());
        let cluster = run(scenario, Backend::cluster(3));
        assert_eq!(single.checksum, cluster.checksum, "scenario `{name}` diverged at 3 workers");
    }
}

/// The spawn machinery is under the bit-identity contract too: the two
/// scenarios that create agents mid-run — traffic's wrapping respawns and
/// the predator's births — run their **default forms** in conformance
/// (spawn ids are assigned in global `(parent id, ordinal)` order on every
/// backend), and the runs must genuinely exercise mid-run spawning: a
/// world with no id above the initial population would be vacuous proof.
#[test]
fn spawning_scenarios_conform_with_their_default_forms() {
    let registry = Registry::builtin();
    for name in ["traffic", "predator"] {
        let scenario = registry.get(name).unwrap();
        let initial_max = scenario.conformance(SEED).unwrap().population.iter().map(|a| a.id.raw()).max().unwrap();
        let single = run(scenario, Backend::single());
        assert!(
            single.world.iter().any(|a| a.id.raw() > initial_max),
            "scenario `{name}` conformance run spawned nothing — the spawn path is untested"
        );
        for workers in [2, 3] {
            let cluster = run(scenario, Backend::cluster(workers));
            assert_eq!(
                single.checksum, cluster.checksum,
                "scenario `{name}`: {workers}-worker cluster diverged from single node on the spawning default form"
            );
        }
    }
}

// ---- golden conformance checksums for the registry-era scenarios ---------
//
// The absolute bits of the two new workloads, pinned across builds at the
// same strength as tests/golden_tick.rs pins the paper's three: if any
// future change perturbs a single bit of either trajectory, these move.

const GOLDEN_EPIDEMIC: u64 = 0xEFDF_A3ED_B826_E4CE;
const GOLDEN_FLOCK_OBSTACLES: u64 = 0x8207_542D_825E_ECCA;

#[test]
fn golden_epidemic_conformance_20_ticks() {
    let registry = Registry::builtin();
    let scenario = registry.get("epidemic").unwrap();
    for backend in [Backend::single(), Backend::cluster(2)] {
        let got = run(scenario, backend.clone()).checksum;
        assert_eq!(
            got,
            GOLDEN_EPIDEMIC,
            "epidemic golden world drifted on {} (got {got:#018X}); see the module docs before touching this constant",
            backend.label()
        );
    }
}

#[test]
fn golden_flock_obstacles_conformance_20_ticks() {
    let registry = Registry::builtin();
    let scenario = registry.get("flock-obstacles").unwrap();
    for backend in [Backend::single(), Backend::cluster(2)] {
        let got = run(scenario, backend.clone()).checksum;
        assert_eq!(
            got,
            GOLDEN_FLOCK_OBSTACLES,
            "flock-obstacles golden world drifted on {} (got {got:#018X}); \
             see the module docs before touching this constant",
            backend.label()
        );
    }
}
