//! Golden-tick regression: fixed-seed, fixed-model, 100-tick runs whose
//! final world checksums are committed below.
//!
//! Bit-reproducibility is this repo's core invariant: the same seed must
//! produce the same world on every machine, thread count, index kind and
//! kernel path. The property suite proves those equivalences *within* a
//! build; this test pins the absolute bits *across* builds — if any future
//! change to the kernels, the executor, the indexes or the models perturbs
//! a single bit of any of these three trajectories, the checksum moves and
//! this test fails.
//!
//! That is sometimes the intent (a deliberate model-definition change, like
//! the squared-distance cutoff that landed with the batched kernels). In
//! that case — and only after confirming the kernel conformance properties
//! in `tests/properties.rs` still pass, so batched ≡ scalar still holds —
//! regenerate the constants with:
//!
//! ```text
//! cargo test --test golden_tick -- --nocapture   # failing output prints actuals
//! ```
//!
//! and say so in the PR. An *unexplained* checksum change is a determinism
//! bug; do not update the constants to paper over one.

use brace_core::{Agent, TickExecutor};
use brace_models::{FishBehavior, FishParams, PredatorBehavior, PredatorParams, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;

/// FNV-1a over every bit of the world: ids, positions, states, effects,
/// liveness, in row order. Position/state bits go in via `to_bits`, so even
/// a `-0.0` vs `0.0` flip moves the sum.
fn world_checksum(agents: &[Agent]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(PRIME)
    }
    let mut h = OFFSET;
    for a in agents {
        h = mix(h, a.id.raw());
        h = mix(h, a.pos.x.to_bits());
        h = mix(h, a.pos.y.to_bits());
        h = mix(h, a.alive as u64);
        for s in &a.state {
            h = mix(h, s.to_bits());
        }
        for e in &a.effects {
            h = mix(h, e.to_bits());
        }
    }
    h
}

const TICKS: u64 = 100;
const SEED: u64 = 42;

fn run_checksum<B: brace_core::Behavior>(behavior: B, pop: Vec<Agent>, kind: IndexKind) -> u64 {
    let mut exec = TickExecutor::new(behavior, pop, kind, SEED);
    exec.run(TICKS);
    world_checksum(&exec.agents())
}

#[test]
fn golden_fish_100_ticks() {
    let b = FishBehavior::new(FishParams::default());
    let pop = b.population(300, SEED);
    let got = run_checksum(b, pop, IndexKind::KdTree);
    assert_eq!(
        got, 0x7FCC_939F_AE16_A057,
        "fish golden world drifted (got {got:#06X}); see the module docs before touching this constant"
    );
}

#[test]
fn golden_traffic_100_ticks() {
    let b =
        TrafficBehavior::new(TrafficParams { segment: 1_000.0, lanes: 3, density: 0.03, ..TrafficParams::default() });
    let pop = b.population(SEED);
    let got = run_checksum(b, pop, IndexKind::Grid);
    assert_eq!(
        got, 0xA23D_BFEE_B720_92E2,
        "traffic golden world drifted (got {got:#06X}); see the module docs before touching this constant"
    );
}

#[test]
fn golden_predator_100_ticks() {
    let b = PredatorBehavior::new(PredatorParams::default());
    let pop = b.population(200, 30.0, SEED);
    let got = run_checksum(b, pop, IndexKind::Scan);
    assert_eq!(
        got, 0x4009_9BD6_5F84_5536,
        "predator golden world drifted (got {got:#06X}); see the module docs before touching this constant"
    );
}
