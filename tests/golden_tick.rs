//! Golden-tick regression: fixed-seed, fixed-model, 100-tick runs whose
//! final world checksums are committed below.
//!
//! Bit-reproducibility is this repo's core invariant: the same seed must
//! produce the same world on every machine, thread count, index kind and
//! kernel path. The property suite proves those equivalences *within* a
//! build; this test pins the absolute bits *across* builds — if any future
//! change to the kernels, the executor, the indexes or the models perturbs
//! a single bit of any of these three trajectories, the checksum moves and
//! this test fails.
//!
//! That is sometimes the intent (a deliberate model-definition change, like
//! the squared-distance cutoff that landed with the batched kernels). In
//! that case — and only after confirming the kernel conformance properties
//! in `tests/properties.rs` still pass, so batched ≡ scalar still holds —
//! regenerate the constants with:
//!
//! ```text
//! cargo test --test golden_tick -- --nocapture   # failing output prints actuals
//! ```
//!
//! and say so in the PR. An *unexplained* checksum change is a determinism
//! bug; do not update the constants to paper over one.

use brace_core::{Agent, Behavior, TickExecutor};
use brace_mapreduce::{ClusterConfig, ClusterSim, FaultPlan, LoadBalancer};
use brace_models::{FishBehavior, FishParams, PredatorBehavior, PredatorParams, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;
// The canonical world fingerprint (FNV-1a over every bit: ids, positions,
// states, effects, liveness — `to_bits`, so even a `-0.0` vs `0.0` flip
// moves the sum). Shared with the registry conformance suite and the CLI,
// so all three report directly comparable numbers.
use brace_scenario::world_checksum;
use std::sync::Arc;

const TICKS: u64 = 100;
const SEED: u64 = 42;

fn run_checksum<B: brace_core::Behavior>(behavior: B, pop: Vec<Agent>, kind: IndexKind) -> u64 {
    let mut exec = TickExecutor::new(behavior, pop, kind, SEED);
    exec.run(TICKS);
    world_checksum(&exec.agents())
}

#[test]
fn golden_fish_100_ticks() {
    let b = FishBehavior::new(FishParams::default());
    let pop = b.population(300, SEED);
    let got = run_checksum(b, pop, IndexKind::KdTree);
    assert_eq!(
        got, 0x7FCC_939F_AE16_A057,
        "fish golden world drifted (got {got:#06X}); see the module docs before touching this constant"
    );
}

#[test]
fn golden_traffic_100_ticks() {
    let b =
        TrafficBehavior::new(TrafficParams { segment: 1_000.0, lanes: 3, density: 0.03, ..TrafficParams::default() });
    let pop = b.population(SEED);
    let got = run_checksum(b, pop, IndexKind::Grid);
    assert_eq!(
        got, 0xA23D_BFEE_B720_92E2,
        "traffic golden world drifted (got {got:#06X}); see the module docs before touching this constant"
    );
}

#[test]
fn golden_predator_100_ticks() {
    let b = PredatorBehavior::new(PredatorParams::default());
    let pop = b.population(200, 30.0, SEED);
    let got = run_checksum(b, pop, IndexKind::Scan);
    assert_eq!(
        got, 0x4009_9BD6_5F84_5536,
        "predator golden world drifted (got {got:#06X}); see the module docs before touching this constant"
    );
}

// ---- golden *cluster* checksums ------------------------------------------
//
// The distributed claims, pinned at the same strength as the single-node
// ones: a 4-worker cluster — load balancer ON, partition boundaries moving
// mid-run, delta distribution shipping replicas as masked frames — produces
// **the same bits** as the single-node executor. The fish test reuses the
// single-node constant above verbatim; traffic pins a fresh constant for a
// wrap-free configuration (it predates globally-ordered spawn ids and
// stays pinned as a second trajectory; the *wrapping* respawn path is now
// exactly distributable too, which `tests/scenario_conformance.rs` proves
// on traffic's default form). The fault-recovery test replays through a
// checkpoint restore and must land on the identical checksum.

/// Run a 4-worker, load-balanced, delta-distributed cluster and checksum
/// the collected world (sorted by id — which is also the single-node
/// executor's row order for these non-spawning runs).
fn cluster_checksum<B: Behavior + 'static>(
    behavior: B,
    pop: Vec<Agent>,
    space_x: (f64, f64),
    fault: Option<FaultPlan>,
) -> u64 {
    let cfg = ClusterConfig {
        workers: 4,
        epoch_len: 5,
        seed: SEED,
        space_x,
        load_balance: true,
        balancer: LoadBalancer { imbalance_threshold: 1.1, migration_cost_ticks: 0.5, epoch_len: 5 },
        checkpoint_every: Some(4),
        fault,
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
    sim.run_ticks(TICKS).unwrap();
    world_checksum(&sim.collect_agents().unwrap())
}

#[test]
fn golden_fish_cluster_100_ticks_matches_single_node_constant() {
    let b = FishBehavior::new(FishParams::default());
    let pop = b.population(300, SEED);
    let got = cluster_checksum(b, pop, (-20.0, 20.0), None);
    assert_eq!(
        got, 0x7FCC_939F_AE16_A057,
        "4-worker fish cluster drifted from the single-node golden world (got {got:#06X})"
    );
}

#[test]
fn golden_fish_cluster_fault_recovery_matches_single_node_constant() {
    // Lose all live worker state during epoch 10 (its checkpoint included),
    // recover from the last surviving coordinated checkpoint, replay — and
    // still land on the single-node constant.
    let b = FishBehavior::new(FishParams::default());
    let pop = b.population(300, SEED);
    let got = cluster_checksum(b, pop, (-20.0, 20.0), Some(FaultPlan::once(10)));
    assert_eq!(
        got, 0x7FCC_939F_AE16_A057,
        "fault-recovery fish cluster drifted from the single-node golden world (got {got:#06X})"
    );
}

/// Traffic config whose vehicles cannot reach the segment end within the
/// horizon (max_speed × dt × TICKS = 3600 < 10000 − 6000) — a spawn-free
/// trajectory, kept pinned alongside the spawning conformance coverage.
fn wrap_free_traffic() -> (TrafficBehavior, Vec<Agent>) {
    let b =
        TrafficBehavior::new(TrafficParams { segment: 10_000.0, lanes: 3, density: 0.01, ..TrafficParams::default() });
    let pop: Vec<Agent> = b.population(SEED).into_iter().filter(|a| a.pos.x < 6_000.0).collect();
    (b, pop)
}

#[test]
fn golden_traffic_cluster_100_ticks_matches_single_node() {
    let (b, pop) = wrap_free_traffic();
    let single = run_checksum(b, pop.clone(), IndexKind::Grid);
    assert_eq!(
        single, 0x431B_E404_82D3_8EAC,
        "wrap-free traffic single-node world drifted (got {single:#06X}); see the module docs"
    );
    let (b, _) = wrap_free_traffic();
    let cluster = cluster_checksum(b, pop, (0.0, 10_000.0), None);
    assert_eq!(cluster, single, "4-worker traffic cluster must equal the single-node bits (got {cluster:#06X})");
}
