//! Process-restart durability, the honest way: spawn the real `brace`
//! binary on a durable run, **SIGKILL it mid-epoch** (no flushes, no
//! destructors, no courtesy of any kind), then finish the run with
//! `brace run --resume <run-id>` in a second, freshly-started process —
//! and require the final world checksum to be **bit-identical** to an
//! uninterrupted run.
//!
//! This is the end of the golden-checksum suite's chain of custody: the
//! in-process suites prove cluster ≡ single-node and replay ≡ no-fault;
//! this one proves that the write-ahead manifest plus the fsynced
//! checkpoints carry those same bits across an actual process boundary.
//!
//! The child runs with `--epoch-sleep-ms`, a results-neutral per-epoch
//! throttle, so the parent can reliably observe "some epochs durable, run
//! not finished" before pulling the trigger.

use brace::mapreduce::manifest;
use brace::scenario::{Backend, Registry, Runner};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BRACE: &str = env!("CARGO_BIN_EXE_brace");
const TICKS: u64 = 20;
const WORKERS: usize = 3;
/// Generous per-epoch throttle: 4 epochs ⇒ ≥ 1 s of runway on any machine.
const EPOCH_SLEEP_MS: u64 = 250;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("brace-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The expected bits: the same scenario conformance run, uninterrupted,
/// in-process, on the same worker count.
fn uninterrupted_checksum(scenario: &str) -> u64 {
    let registry = Registry::builtin();
    let scenario = registry.get(scenario).unwrap();
    Runner::new(scenario).conformance().backend(Backend::cluster(WORKERS)).run(TICKS).unwrap().checksum
}

/// Start a durable run in a child process, SIGKILL it once at least two
/// epochs are durable (and well before completion), resume it in a second
/// process, and return the completed run's recorded checksum.
fn kill_and_resume(scenario: &str) -> u64 {
    let root = temp_root(scenario);
    let run_id = format!("{scenario}-kill");
    let dir = root.join(&run_id);

    let mut child = Command::new(BRACE)
        .args([
            "run",
            "--scenario",
            scenario,
            "--conformance",
            "--backend",
            &format!("cluster:{WORKERS}"),
            "--ticks",
            &TICKS.to_string(),
            "--run-dir",
            root.to_str().unwrap(),
            "--run-id",
            &run_id,
            "--checkpoint-every",
            "1",
            "--epoch-sleep-ms",
            &EPOCH_SLEEP_MS.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn brace run");

    // Wait for ≥ 2 durable epochs, then kill. The child sleeps 250 ms per
    // epoch and has 4 to run, so observing epoch 2 leaves ≥ 500 ms of
    // runway — the kill lands mid-run, not post-completion.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(m) = manifest::read_manifest(&dir) {
            assert!(m.complete().is_none(), "child finished before the kill; raise EPOCH_SLEEP_MS");
            if m.completed_epochs() >= 2 {
                break;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited early ({status}) — it was supposed to be killed");
        }
        assert!(Instant::now() < deadline, "no durable epochs after 60 s");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL the child"); // SIGKILL on unix: nothing runs after this
    child.wait().unwrap();

    let m = manifest::read_manifest(&dir).expect("manifest survives the kill");
    assert!(m.complete().is_none(), "a killed run must not be complete");
    let durable_before = m.completed_epochs();
    assert!(durable_before >= 2);

    // A fresh process finishes the job.
    let out = Command::new(BRACE)
        .args(["run", "--run-dir", root.to_str().unwrap(), "--resume", &run_id])
        .output()
        .expect("spawn brace run --resume");
    assert!(
        out.status.success(),
        "resume failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resumed@"), "resume restarted from scratch instead of restoring: {stdout}");

    let m = manifest::read_manifest(&dir).expect("manifest after resume");
    let (ticks, checksum) = m.complete().expect("resumed run records completion");
    assert_eq!(ticks, TICKS);
    cleanup(&root);
    checksum
}

fn cleanup(root: &Path) {
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn sigkill_and_resume_is_bit_identical_for_fish() {
    assert_eq!(kill_and_resume("fish"), uninterrupted_checksum("fish"));
}

#[test]
fn sigkill_and_resume_is_bit_identical_for_epidemic() {
    let checksum = kill_and_resume("epidemic");
    assert_eq!(checksum, uninterrupted_checksum("epidemic"));
    // And the absolute bits: the same golden the conformance suite pins.
    assert_eq!(checksum, 0xEFDF_A3ED_B826_E4CE, "resumed epidemic drifted from the pinned conformance golden");
}
