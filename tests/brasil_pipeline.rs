//! End-to-end BRASIL pipeline tests: the paper's own script (Figure 2)
//! through lexer → parser → checker → compiler → optimizer → distributed
//! execution, plus the theorems' observable consequences.

use brace_common::{AgentId, DetRng, Vec2};
use brace_core::{Agent, Behavior, Simulation};
use brace_mapreduce::{ClusterConfig, ClusterSim};
use brace_models::scripts;
use brasil::{invert_effects, Script};
use std::sync::Arc;

#[test]
fn figure2_full_pipeline_to_cluster() {
    // The paper's Figure 2, compiled and executed on the distributed
    // runtime. The raw script divides by zero for coincident fish (NIL
    // semantics skip those assignments), so it runs as written.
    let script = Script::compile(scripts::FIGURE2_FISH).expect("Figure 2 compiles");
    let class = script.classes()[0].clone();
    assert!(class.schema().has_nonlocal_effects(), "Figure 2 assigns effects to p");
    assert_eq!(class.schema().visibility(), 1.0, "#range[-1,1] becomes the visibility bound");

    let behavior = brasil::BrasilBehavior::new(class);
    let schema = behavior.schema().clone();
    let mut rng = DetRng::seed_from_u64(2);
    let agents: Vec<Agent> = (0..120)
        .map(|i| {
            let mut a = Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 10.0), rng.range(0.0, 10.0)), &schema);
            // Start with small random velocities.
            a.state[0] = rng.range(-0.2, 0.2);
            a.state[1] = rng.range(-0.2, 0.2);
            a
        })
        .collect();
    let cfg = ClusterConfig {
        workers: 3,
        epoch_len: 5,
        seed: 2,
        space_x: (0.0, 10.0),
        load_balance: false,
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(Arc::new(behavior), agents, cfg).unwrap();
    sim.run_ticks(10).unwrap();
    let world = sim.collect_agents().unwrap();
    assert_eq!(world.len(), 120);
    for a in &world {
        assert!(!a.pos.is_nan(), "Figure 2 must not NaN the world");
    }
    // Non-local effects crossed the network: the second reduce pass ran.
    assert_eq!(sim.stats().comm_rounds_per_tick, 2);
}

#[test]
fn theorem2_inverted_figure2_is_equivalent_and_single_pass() {
    // Effect inversion on Figure 2 (the paper's §4.2 example): identical
    // simulation, one reduce pass instead of two.
    let compile = |invert: bool| {
        let script = Script::compile(scripts::FIGURE2_FISH).unwrap();
        let class = script.classes()[0].clone();
        let class = if invert { invert_effects(class).unwrap() } else { class };
        brasil::BrasilBehavior::new(class)
    };
    let run = |behavior: brasil::BrasilBehavior| {
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(4);
        let agents: Vec<Agent> = (0..60)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 6.0), rng.range(0.0, 6.0)), &schema))
            .collect();
        let mut sim = Simulation::builder(behavior).agents(agents).seed(6).build().unwrap();
        sim.step();
        sim.agents().iter().map(|a| (a.id, a.state.clone())).collect::<Vec<_>>()
    };
    let original = run(compile(false));
    let inverted = run(compile(true));
    for ((ia, sa), (ib, sb)) in original.iter().zip(&inverted) {
        assert_eq!(ia, ib);
        for (va, vb) in sa.iter().zip(sb) {
            // 1/|x - p.x| sums can be huge near coincidence; compare
            // relative.
            let scale = va.abs().max(vb.abs()).max(1.0);
            assert!((va - vb).abs() <= 1e-9 * scale, "{ia}: {va} vs {vb}");
        }
    }
}

#[test]
fn state_effect_violations_are_compile_errors() {
    // A round-up of programs the checker must reject — each is a way to
    // break the state-effect pattern that would corrupt a parallel run.
    let cases: &[(&str, &str)] = &[
        (
            // Writing a state field in the query phase.
            r#"class A { public state float v : v; public void run() { v <- 1; } }"#,
            "not an effect field",
        ),
        (
            // Reading an effect mid-aggregation.
            r#"class A { private effect float n : sum;
               public void run() { foreach (A p : Extent<A>) { n <- n; } } }"#,
            "inside a foreach",
        ),
        (
            // Peeking at another agent's unaggregated effects.
            r#"class A { private effect float n : sum; private effect float m : sum;
               public void run() { foreach (A p : Extent<A>) { m <- p.n; } } }"#,
            "another agent",
        ),
        (
            // Update rule reaching into the world.
            r#"class A { public state float v : q.v; public void run() {} }"#,
            "cannot access other agents",
        ),
        (
            // Arbitrary looping is not in the language at all.
            r#"class A { public void run() { while (true) {} } }"#,
            "", // parse error, message shape differs
        ),
    ];
    for (src, needle) in cases {
        let err = Script::compile(src).err().unwrap_or_else(|| panic!("must reject: {src}"));
        if !needle.is_empty() {
            assert!(err.to_string().contains(needle), "error for `{src}` was `{err}`, expected to mention `{needle}`");
        }
    }
}

#[test]
fn range_tag_drives_replication_volume() {
    // Doubling the visibility bound must increase replica traffic — the
    // paper's Theorem 3 trade-off (more replicas per round when visibility
    // grows) made measurable.
    let script_with_range = |r: f64| {
        format!(
            r#"class A {{
                public state float x : x + 0.1 #range[-{r}, {r}];
                public state float y : y #range[-{r}, {r}];
                public state float c : n;
                private effect float n : sum;
                public void run() {{ foreach (A p : Extent<A>) {{ n <- 1; }} }}
            }}"#
        )
    };
    let replicas_for = |r: f64| {
        let script = Script::compile(&script_with_range(r)).unwrap();
        let behavior = script.behavior("A").unwrap();
        let schema = behavior.schema().clone();
        assert_eq!(schema.visibility(), r);
        let mut rng = DetRng::seed_from_u64(8);
        let agents: Vec<Agent> = (0..200)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 40.0), rng.range(0.0, 10.0)), &schema))
            .collect();
        let cfg = ClusterConfig {
            workers: 4,
            epoch_len: 5,
            seed: 8,
            space_x: (0.0, 40.0),
            load_balance: false,
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), agents, cfg).unwrap();
        sim.run_ticks(5).unwrap();
        sim.stats().net.replica_bytes()
    };
    let small = replicas_for(1.0);
    let large = replicas_for(4.0);
    assert!(large > small, "4x visibility must ship more replica bytes ({large} <= {small})");
}

#[test]
fn optimizer_output_runs_identically_to_unoptimized() {
    // Safe passes must be semantics-preserving end to end.
    let src = r#"
        class O {
            public state float x : x + vx #range[-1, 1];
            public state float y : y #range[-1, 1];
            public state float vx : vx * 0.5 + pull / max(n, 1);
            private effect float pull : sum;
            private effect float n : sum;
            public void run() {
                const float gain = 2 * 3 - 5;
                const float unused = 99;
                foreach (O p : Extent<O>) {
                    if (true) { pull <- (p.x - x) * gain; }
                    if (false) { pull <- 1000; }
                    n <- 1;
                }
            }
        }
    "#;
    let run = |script: Script| {
        let behavior = script.behavior("O").unwrap();
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(9);
        let agents: Vec<Agent> =
            (0..50).map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 5.0), 0.0), &schema)).collect();
        let mut sim = Simulation::builder(behavior).agents(agents).seed(10).build().unwrap();
        sim.run(5);
        sim.agents().iter().map(|a| (a.id, a.pos, a.state.clone())).collect::<Vec<_>>()
    };
    let optimized = run(Script::compile(src).unwrap());
    let unoptimized = run(Script::compile_unoptimized(src).unwrap());
    assert_eq!(optimized, unoptimized);
}
