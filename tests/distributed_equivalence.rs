//! The load-bearing correctness claim of the whole system: running a
//! behavioral simulation on the distributed MapReduce runtime produces the
//! same world as running it on a single node — for any worker count, for
//! local-effect and non-local-effect models, with and without the load
//! balancer moving partition boundaries mid-run.
//!
//! (The mapreduce crate asserts this for synthetic behaviors; here it is
//! asserted end-to-end for the paper's real models and compiled BRASIL
//! scripts.)

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::behavior::{Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::{Agent, AgentSchema, Behavior, Combinator, Simulation};
use brace_mapreduce::{ClusterConfig, ClusterSim, DistributionMode, LoadBalancer};
use brace_models::scripts;
use brace_models::{FishBehavior, FishParams, PredatorBehavior, PredatorParams, TrafficBehavior, TrafficParams};
use proptest::prelude::*;
use std::sync::Arc;

fn single_node<B: Behavior>(behavior: B, agents: Vec<Agent>, ticks: u64, seed: u64) -> Vec<Agent> {
    let mut sim = Simulation::builder(behavior).agents(agents).seed(seed).build().unwrap();
    sim.run(ticks);
    let mut out = sim.agents().to_vec();
    out.sort_by_key(|a| a.id);
    out
}

fn cluster(
    behavior: Arc<dyn Behavior>,
    agents: Vec<Agent>,
    ticks: u64,
    seed: u64,
    workers: usize,
    space_x: (f64, f64),
    lb: bool,
) -> Vec<Agent> {
    let cfg = ClusterConfig {
        workers,
        epoch_len: 5,
        seed,
        space_x,
        load_balance: lb,
        balancer: LoadBalancer { imbalance_threshold: 1.1, migration_cost_ticks: 0.5, epoch_len: 5 },
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(behavior, agents, cfg).unwrap();
    sim.run_ticks(ticks).unwrap();
    sim.collect_agents().unwrap()
}

/// Compare agent worlds allowing for floating-point aggregation-order
/// differences (partition-local partial sums associate differently).
fn assert_world_close(a: &[Agent], b: &[Agent], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: population size");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: agent identity");
        assert_eq!(x.alive, y.alive, "{what}: liveness of {}", x.id);
        let dp = x.pos.dist_linf(y.pos);
        assert!(dp <= tol, "{what}: {} position drift {dp} > {tol}", x.id);
        for (i, (sa, sb)) in x.state.iter().zip(&y.state).enumerate() {
            let scale = sa.abs().max(sb.abs()).max(1.0);
            assert!((sa - sb).abs() <= tol * scale, "{what}: {} state[{i}] {sa} vs {sb}", x.id);
        }
    }
}

#[test]
fn fish_school_cluster_equals_single_node() {
    let params = FishParams { school_radius: 15.0, ..FishParams::default() };
    let make = || FishBehavior::new(params.clone());
    let pop = make().population(200, 31);
    let reference = single_node(make(), pop.clone(), 15, 77);
    for workers in [1, 2, 3] {
        let got = cluster(Arc::new(make()), pop.clone(), 15, 77, workers, (-15.0, 15.0), false);
        // Fish sums are genuinely order-sensitive in the last bits; chaotic
        // amplification over 15 ticks bounds the tolerance we can demand.
        assert_world_close(&reference, &got, 1e-6, &format!("fish x{workers}"));
    }
}

#[test]
fn traffic_cluster_equals_single_node() {
    // No respawns within the horizon (vehicles start far from the end), so
    // worker-count-dependent id assignment cannot kick in.
    let params = TrafficParams { segment: 4000.0, density: 0.02, ..TrafficParams::default() };
    let make = || TrafficBehavior::new(params.clone());
    let pop: Vec<Agent> = make().population(5).into_iter().filter(|a| a.pos.x < 2000.0).collect();
    let reference = single_node(make(), pop.clone(), 20, 13);
    for workers in [2, 4] {
        let got = cluster(Arc::new(make()), pop.clone(), 20, 13, workers, (0.0, 4000.0), false);
        assert_world_close(&reference, &got, 1e-9, &format!("traffic x{workers}"));
    }
}

#[test]
fn predator_nonlocal_cluster_equals_single_node() {
    // The map-reduce-reduce path: non-local hurt effects cross partitions.
    let params = PredatorParams { spawn_probability: 0.0, nonlocal: true, ..Default::default() };
    let make = || PredatorBehavior::new(params.clone());
    let pop = make().population(150, 20.0, 3);
    let reference = single_node(make(), pop.clone(), 10, 5);
    for workers in [2, 3] {
        let got = cluster(Arc::new(make()), pop.clone(), 10, 5, workers, (0.0, 20.0), false);
        assert_world_close(&reference, &got, 1e-9, &format!("predator x{workers}"));
    }
}

#[test]
fn brasil_script_cluster_equals_single_node() {
    // Compiled BRASIL runs identically through both engines.
    let make = || scripts::predator(false).unwrap();
    let schema = make().schema().clone();
    let mut rng = DetRng::seed_from_u64(21);
    let pop: Vec<Agent> = (0..150)
        .map(|i| {
            let mut a = Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 18.0), rng.range(0.0, 18.0)), &schema);
            a.state[0] = rng.range(0.5, 1.5);
            a
        })
        .collect();
    let reference = single_node(make(), pop.clone(), 10, 55);
    let got = cluster(Arc::new(make()), pop.clone(), 10, 55, 3, (0.0, 18.0), false);
    assert_world_close(&reference, &got, 1e-9, "brasil predator x3");
}

#[test]
fn load_balancing_does_not_change_results() {
    // Moving partition boundaries mid-run must be invisible to the agents.
    let params =
        FishParams { informed_a: 1.0, informed_b: 0.0, omega: 2.0, school_radius: 12.0, ..FishParams::default() };
    let make = || FishBehavior::new(params.clone());
    let pop = make().population(150, 41);
    let without = cluster(Arc::new(make()), pop.clone(), 30, 9, 3, (-12.0, 12.0), false);
    let with = cluster(Arc::new(make()), pop, 30, 9, 3, (-12.0, 12.0), true);
    assert_world_close(&without, &with, 1e-6, "fish LB vs no-LB");
}

// ---- delta distribution ≡ full redistribution ----------------------------
//
// The pool-resident worker ships persisting replicas as masked delta
// frames against per-peer sessions; the `DistributionMode::Full` ablation
// resets those sessions every tick and re-ships everything as full
// records — the old disk-era behavior. The two transports must be
// **bit-identical** in every observable way, under the nastiest dynamics
// we can generate: float-valued effect sums (order-sensitive in the last
// bit, so any replica staleness or ordering slip shows), agents migrating
// across partition boundaries, spawn/kill churn, and the load balancer
// repartitioning mid-run. 1–4 workers.

/// Float-effect model with deterministic churn: agents drift (migration),
/// spawn children on a sparse id×tick schedule and die on another, and
/// aggregate order-sensitive float sums plus a Min — any divergence in
/// replica content, membership or ordering flips bits immediately.
#[derive(Clone)]
struct ChurnStorm(AgentSchema, /* churn: */ bool);

impl ChurnStorm {
    fn new(churn: bool) -> Self {
        ChurnStorm(
            AgentSchema::builder("ChurnStorm")
                .state("w")
                .state("drift")
                .effect("acc", Combinator::Sum)
                .effect("near", Combinator::Min)
                .visibility(4.0)
                .reachability(1.5)
                .build()
                .unwrap(),
            churn,
        )
    }

    fn population(&self, n: usize, seed: u64) -> Vec<Agent> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut a =
                    Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, 60.0), rng.range(0.0, 12.0)), &self.0);
                a.state[0] = rng.range(0.5, 2.0);
                a.state[1] = rng.range(-1.0, 1.0);
                a
            })
            .collect()
    }
}

impl Behavior for ChurnStorm {
    fn schema(&self) -> &AgentSchema {
        &self.0
    }
    fn query(&self, me: brace_core::AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            let d = my_pos.dist_linf(nb.agent.pos());
            // Order-sensitive float sum: weights differ per neighbor.
            eff.local(FieldId::new(0), nb.agent.state(0) / (1.0 + d));
            eff.local(FieldId::new(1), d);
        }
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let acc = me.effect(FieldId::new(0));
        let near = me.effect(FieldId::new(1));
        // Drift across partitions, modulated by the float aggregates.
        me.pos.x += me.get(FieldId::new(1)) + 0.1 * acc.tanh();
        me.pos.y += ctx.rng.range(-0.3, 0.3);
        if near.is_finite() {
            me.set(FieldId::new(0), me.get(FieldId::new(0)) + near * 1e-3);
        }
        if self.1 {
            let id = me.id.raw();
            if (id.wrapping_mul(31).wrapping_add(ctx.tick)).is_multiple_of(23) {
                ctx.spawn(me.pos + Vec2::new(0.3, -0.2), vec![me.get(FieldId::new(0)) * 0.5, -me.get(FieldId::new(1))]);
            }
            if (id.wrapping_mul(17).wrapping_add(ctx.tick * 7)).is_multiple_of(41) {
                me.alive = false;
            }
        }
    }
}

fn run_mode(
    churn: bool,
    pop: &[Agent],
    seed: u64,
    workers: usize,
    epochs: u64,
    lb: bool,
    mode: DistributionMode,
) -> Vec<Agent> {
    let cfg = ClusterConfig {
        workers,
        epoch_len: 5,
        seed,
        space_x: (0.0, 60.0),
        load_balance: lb,
        balancer: LoadBalancer { imbalance_threshold: 1.1, migration_cost_ticks: 0.5, epoch_len: 5 },
        distribution: mode,
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(Arc::new(ChurnStorm::new(churn)), pop.to_vec(), cfg).unwrap();
    sim.run_epochs(epochs).unwrap();
    sim.collect_agents().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delta distribution ≡ full redistribution, bit for bit: under churn
    /// (spawn/kill), migration, repartitioning (load balancer on/off) and
    /// 1–4 workers. `assert_eq!` on the full `Agent` records — positions,
    /// states and effects must agree to the last bit.
    #[test]
    fn delta_equals_full_redistribution_bitwise(
        seed in 0u64..1_000,
        workers in 1usize..5,
        n in 30usize..90,
        epochs in 2u64..5,
        lb in any::<bool>(),
        churn in any::<bool>(),
    ) {
        let pop = ChurnStorm::new(churn).population(n, seed ^ 0xA5A5);
        let delta = run_mode(churn, &pop, seed, workers, epochs, lb, DistributionMode::Delta);
        let full = run_mode(churn, &pop, seed, workers, epochs, lb, DistributionMode::Full);
        prop_assert_eq!(delta, full);
    }

    /// Without id-block spawning, the delta-distributed cluster is also
    /// bit-identical to the single-node executor — for any worker count
    /// and with the load balancer moving boundaries mid-run. (This is the
    /// placement-independence guarantee of id-canonical neighbor order;
    /// float sums included.)
    #[test]
    fn delta_cluster_equals_single_node_bitwise(
        seed in 0u64..1_000,
        workers in 1usize..5,
        n in 30usize..90,
        epochs in 2u64..4,
        lb in any::<bool>(),
    ) {
        let pop = ChurnStorm::new(false).population(n, seed ^ 0x3C3C);
        let single = single_node(ChurnStorm::new(false), pop.clone(), epochs * 5, seed);
        let cluster = run_mode(false, &pop, seed, workers, epochs, lb, DistributionMode::Delta);
        prop_assert_eq!(single, cluster);
    }
}

#[test]
fn spawning_dynamics_are_statistically_stable_across_engines() {
    // With spawning enabled, exact equality across engines is impossible by
    // design: spawned agents draw ids from per-worker blocks, and an
    // agent's RNG stream is keyed by its id, so children behave differently
    // even though the *parents'* spawn decisions are identical. The claim
    // that survives is statistical: population trajectories stay close, and
    // the id discipline holds (unique, from the right blocks).
    let params = PredatorParams { nonlocal: true, ..Default::default() };
    let make = || PredatorBehavior::new(params.clone());
    let pop = make().population(200, 22.0, 8);
    let reference = single_node(make(), pop.clone(), 10, 15);
    let got = cluster(Arc::new(make()), pop, 10, 15, 3, (0.0, 22.0), false);
    // Population sizes agree within a small tolerance.
    let (nr, ng) = (reference.len() as f64, got.len() as f64);
    assert!((nr - ng).abs() / nr < 0.05, "population trajectories diverged: {nr} vs {ng}");
    // Ids are unique and spawned ids sit above the initial range.
    let mut ids: Vec<u64> = got.iter().map(|a| a.id.raw()).collect();
    ids.sort_unstable();
    let len_before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), len_before, "duplicate agent ids after distributed spawning");
    assert!(got.iter().any(|a| a.id.raw() >= 200), "spawns happened");
}
