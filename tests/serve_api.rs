//! End-to-end tests of the `brace-serve` control plane over real sockets.
//!
//! Each test boots its own [`Server`] on an ephemeral port (so counters
//! are isolated and tests parallelize), then speaks plain HTTP/1.1 over
//! [`TcpStream`] — the same wire a curl-driven CI smoke test uses. The
//! load-bearing assertions:
//!
//! * a run served through the API is **bit-identical** to the same run
//!   driven directly through [`Runner`] (the control plane adds transport,
//!   not nondeterminism);
//! * a repeat `POST /runs` is answered from the result cache with the
//!   identical checksum and **without re-simulating** (`runs_completed`
//!   does not move, `cache.hits` does);
//! * past the bounded admission queue, `POST /runs` gets `503` with a
//!   `Retry-After` header instead of unbounded buffering;
//! * malformed input produces clean 4xx responses and the server keeps
//!   serving afterwards.

use brace_scenario::{Registry, Runner};
use brace_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One request, one response, connection closed (the server's model).
/// Returns `(status, raw head, body)` with chunked bodies decoded.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in `{head}`"));
    let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, head.to_string(), body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size");
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = &after[size + 2..]; // skip chunk body + CRLF
    }
    out
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, "GET", path, None)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    request(addr, "POST", path, Some(body))
}

/// Pull a JSON field's raw value out of a flat body by text; plenty for
/// asserting on responses this small.
fn field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat)? + pat.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            match c {
                '"' => *in_str = !*in_str,
                ',' | '}' if !*in_str => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"'))
}

fn run_id(body: &str) -> String {
    field(body, "run_id").expect("response names a run_id").to_string()
}

/// Poll `GET /runs/:id` until the run is terminal; panics after 60 s.
fn wait_done(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = get(addr, &format!("/runs/{id}"));
        assert_eq!(status, 200, "status poll failed: {body}");
        match field(&body, "status") {
            Some("done") => return body,
            Some("failed") => panic!("run failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "run {id} did not finish: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn server() -> Server {
    Server::start(Registry::builtin(), ServeConfig::default()).expect("bind ephemeral port")
}

const EPIDEMIC_RUN: &str = r#"{"scenario":"epidemic","conformance":true,"ticks":20,"seed":42}"#;

#[test]
fn catalogue_lists_the_builtin_registry() {
    let server = server();
    let (status, _, body) = get(server.addr(), "/scenarios");
    assert_eq!(status, 200);
    let registry = Registry::builtin();
    for name in registry.names() {
        assert!(body.contains(&format!("\"name\":\"{name}\"")), "catalogue is missing `{name}`: {body}");
    }
    let (status, _, body) = get(server.addr(), "/");
    assert_eq!(status, 200);
    assert!(body.contains("POST /runs"));
}

#[test]
fn served_run_is_bit_identical_to_a_direct_runner_run() {
    let server = server();
    let (status, _, body) = post(server.addr(), "/runs", EPIDEMIC_RUN);
    assert_eq!(status, 202, "fresh run should be accepted into the queue: {body}");
    assert_eq!(field(&body, "cached"), Some("false"));
    let id = run_id(&body);
    let done = wait_done(server.addr(), &id);

    let registry = Registry::builtin();
    let direct = Runner::new(registry.get("epidemic").unwrap()).conformance().seed(42).run(20).expect("direct run");
    let expect = format!("{:#018X}", direct.checksum);
    assert_eq!(field(&done, "checksum"), Some(expect.as_str()), "API and direct runs must agree bit-for-bit");
    assert_eq!(field(&done, "agents"), Some(direct.agents.to_string().as_str()));
    // Single-node conformance runs observe every tick.
    assert_eq!(field(&done, "frames"), Some("20"));
}

#[test]
fn stream_delivers_frames_then_the_final_checksum() {
    let server = server();
    let (_, _, body) = post(server.addr(), "/runs", EPIDEMIC_RUN);
    let id = run_id(&body);
    // The stream blocks until the run completes, then closes — one request
    // observes the whole run.
    let (status, head, stream) = get(server.addr(), &format!("/runs/{id}/stream"));
    assert_eq!(status, 200);
    assert!(head.to_ascii_lowercase().contains("transfer-encoding: chunked"));
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len(), 21, "20 tick frames plus the terminal line: {stream}");
    assert!(lines[0].contains("\"tick\":1"));
    assert!(lines[19].contains("\"tick\":20"));
    let last = lines[20];
    assert!(last.contains("\"done\":true") && last.contains("\"status\":\"done\""), "terminal line: {last}");

    let direct =
        Runner::new(Registry::builtin().get("epidemic").unwrap()).conformance().seed(42).run(20).expect("direct run");
    assert!(last.contains(&format!("{:#018X}", direct.checksum)), "streamed checksum must match: {last}");
}

#[test]
fn second_identical_post_is_served_from_the_cache_without_resimulating() {
    let server = server();
    let (status, _, first) = post(server.addr(), "/runs", EPIDEMIC_RUN);
    assert_eq!(status, 202);
    let first_done = wait_done(server.addr(), &run_id(&first));
    let first_checksum = field(&first_done, "checksum").unwrap().to_string();

    let (status, _, second) = post(server.addr(), "/runs", EPIDEMIC_RUN);
    assert_eq!(status, 200, "cache hit answers immediately: {second}");
    assert_eq!(field(&second, "cached"), Some("true"));
    assert_eq!(field(&second, "status"), Some("done"));
    assert_eq!(field(&second, "checksum"), Some(first_checksum.as_str()), "cached result must be bit-identical");

    // The cached record replays its stream instantly, terminal line included.
    let (_, _, stream) = get(server.addr(), &format!("/runs/{}/stream", run_id(&second)));
    assert!(stream.lines().count() == 21 && stream.contains(&first_checksum), "replayed stream: {stream}");

    // The proof it did not re-simulate: one completed execution, one hit.
    let (_, _, stats) = get(server.addr(), "/stats");
    assert_eq!(field(&stats, "runs_completed"), Some("1"), "{stats}");
    assert_eq!(field(&stats, "hits"), Some("1"), "{stats}");
    assert_eq!(field(&stats, "misses"), Some("1"), "{stats}");

    // A different seed is a different canonical line: miss, not hit.
    let (status, _, other) =
        post(server.addr(), "/runs", r#"{"scenario":"epidemic","conformance":true,"ticks":20,"seed":43}"#);
    assert_eq!(status, 202, "{other}");
    let other_done = wait_done(server.addr(), &run_id(&other));
    assert_ne!(field(&other_done, "checksum").unwrap(), first_checksum);
}

#[test]
fn cluster_backend_runs_are_exact_and_cached_separately() {
    let server = server();
    let cluster_body = r#"{"scenario":"epidemic","conformance":true,"ticks":20,"seed":42,"backend":"cluster:2"}"#;
    let (status, _, body) = post(server.addr(), "/runs", cluster_body);
    assert_eq!(status, 202, "{body}");
    let done = wait_done(server.addr(), &run_id(&body));

    // Conformance scenarios are exactly distributable: the cluster result
    // must equal the single-node result bit-for-bit...
    let (_, _, single) = post(server.addr(), "/runs", EPIDEMIC_RUN);
    let single_done = wait_done(server.addr(), &run_id(&single));
    assert_eq!(field(&done, "checksum"), field(&single_done, "checksum"));

    // ...but the backend label is still part of the cache key, so the two
    // populated separate entries (2 misses, 0 hits so far).
    let (_, _, stats) = get(server.addr(), "/stats");
    assert_eq!(field(&stats, "misses"), Some("2"), "{stats}");
    let (status, _, repeat) = post(server.addr(), "/runs", cluster_body);
    assert_eq!(status, 200);
    assert_eq!(field(&repeat, "cached"), Some("true"), "{repeat}");
}

#[test]
fn concurrent_posts_all_complete_through_the_bounded_pool() {
    let server = server();
    let addr = server.addr();
    let ids: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let body = format!(r#"{{"scenario":"epidemic","conformance":true,"ticks":10,"seed":{}}}"#, 100 + i);
                    let (status, _, resp) = post(addr, "/runs", &body);
                    assert_eq!(status, 202, "pool admission should absorb 6 jobs: {resp}");
                    run_id(&resp)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for id in &ids {
        wait_done(addr, id);
    }
    let (_, _, stats) = get(addr, "/stats");
    assert_eq!(field(&stats, "runs_completed"), Some("6"), "{stats}");
    assert_eq!(field(&stats, "runs_failed"), Some("0"), "{stats}");
}

#[test]
fn saturation_rejects_with_503_and_retry_after() {
    // One worker, one queue slot: a burst of long runs must overflow
    // admission while the first run still occupies the worker.
    let cfg = ServeConfig { workers: 1, queue_cap: 1, ..ServeConfig::default() };
    let server = Server::start(Registry::builtin(), cfg).unwrap();
    let mut rejected = 0;
    for seed in 0..6 {
        // Distinct seeds defeat the cache; 20k ticks pin the worker for
        // seconds while the burst of POSTs lands in milliseconds.
        let body = format!(r#"{{"scenario":"epidemic","conformance":true,"ticks":20000,"seed":{seed}}}"#);
        let (status, head, resp) = post(server.addr(), "/runs", &body);
        match status {
            202 => {}
            503 => {
                rejected += 1;
                assert!(head.contains("Retry-After:"), "503 must carry Retry-After: {head}");
                assert!(resp.contains("error"), "{resp}");
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    assert!(rejected >= 3, "with 1 worker + 1 queue slot, most of a 6-POST burst must bounce (got {rejected})");
    let (_, _, stats) = get(server.addr(), "/stats");
    assert_eq!(field(&stats, "rejected_saturated"), Some(rejected.to_string().as_str()), "{stats}");
}

#[test]
fn completed_run_records_are_evicted_by_cap_but_live_runs_never_are() {
    // Cap of one terminal record: completing a second run must evict the
    // first record (oldest-completed first) while anything still queued or
    // running keeps its record.
    let cfg = ServeConfig { max_runs: 1, ..ServeConfig::default() };
    let server = Server::start(Registry::builtin(), cfg).unwrap();
    let addr = server.addr();

    let (status, _, first) = post(addr, "/runs", EPIDEMIC_RUN);
    assert_eq!(status, 202, "{first}");
    let first_id = run_id(&first);
    let first_done = wait_done(addr, &first_id);
    let first_checksum = field(&first_done, "checksum").unwrap().to_string();

    // Second completion pushes the terminal count past the cap of 1.
    let (status, _, second) = post(addr, "/runs", r#"{"scenario":"epidemic","conformance":true,"ticks":20,"seed":7}"#);
    assert_eq!(status, 202, "{second}");
    let second_id = run_id(&second);
    wait_done(addr, &second_id);

    // Eviction is sweep-driven (terminal transitions and POSTs), so after
    // the second run finished the first record must be gone...
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = get(addr, &format!("/runs/{first_id}"));
        if status == 404 {
            break;
        }
        assert!(Instant::now() < deadline, "first record was never evicted: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // ...while the newest terminal record is still addressable.
    let (status, _, _) = get(addr, &format!("/runs/{second_id}"));
    assert_eq!(status, 200);
    let (_, _, stats) = get(addr, "/stats");
    assert_eq!(field(&stats, "evicted_runs"), Some("1"), "{stats}");
    assert_eq!(field(&stats, "runs_completed"), Some("2"), "{stats}");

    // Eviction dropped the record, not the result: the canonical job is
    // still answered bit-identically from the result cache.
    let (status, _, repeat) = post(addr, "/runs", EPIDEMIC_RUN);
    assert_eq!(status, 200, "{repeat}");
    assert_eq!(field(&repeat, "cached"), Some("true"));
    assert_eq!(field(&repeat, "checksum"), Some(first_checksum.as_str()));
}

#[test]
fn zero_ttl_expires_records_the_moment_they_complete() {
    let cfg = ServeConfig { run_ttl_secs: 0, ..ServeConfig::default() };
    let server = Server::start(Registry::builtin(), cfg).unwrap();
    let addr = server.addr();
    let (status, _, body) = post(addr, "/runs", EPIDEMIC_RUN);
    assert_eq!(status, 202, "{body}");
    let id = run_id(&body);
    // The record exists while queued/running (a live run is never swept),
    // then vanishes at completion — poll straight to 404.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, poll) = get(addr, &format!("/runs/{id}"));
        if status == 404 {
            break;
        }
        assert_eq!(status, 200, "{poll}");
        assert_ne!(field(&poll, "status"), Some("failed"), "{poll}");
        assert!(Instant::now() < deadline, "record never expired: {poll}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (_, _, stats) = get(addr, "/stats");
    assert_eq!(field(&stats, "runs_completed"), Some("1"), "the run itself completed: {stats}");
    assert_eq!(field(&stats, "evicted_runs"), Some("1"), "{stats}");
}

#[test]
fn malformed_requests_get_clean_errors_and_the_server_survives() {
    let server = server();
    let addr = server.addr();
    let cases: &[(&str, u16)] = &[
        ("this is not json", 400),
        ("{\"ticks\": 5}", 400),     // no scenario
        ("{\"scenario\": 42}", 400), // wrong type
        ("{\"scenario\": \"no-such-model\"}", 404),
        ("{\"scenario\": \"fish\", \"ticks\": 0}", 400),
        ("{\"scenario\": \"fish\", \"backend\": \"gpu\"}", 400),
        ("{\"scenario\": \"fish\", \"index\": \"octree\"}", 400),
        ("{\"scenario\": \"fish\", \"conformance\": true, \"agents\": 7}", 400),
        ("[1,2,3]", 400),                                // not an object
        ("{\"scenario\":\"fish\",\"ticks\":1e99}", 400), // absurd horizon
    ];
    for (body, want) in cases {
        let (status, _, resp) = post(addr, "/runs", body);
        assert_eq!(status, *want, "body `{body}` → {resp}");
        assert!(resp.contains("\"error\""), "error responses carry a message: {resp}");
    }
    let (status, _, _) = get(addr, "/runs/r999");
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, "/runs/r999/stream");
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, "/no-such-endpoint");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "DELETE", "/runs", None);
    assert_eq!(status, 404);

    // After all that abuse, a well-formed run still goes through.
    let (status, _, body) = post(addr, "/runs", r#"{"scenario":"epidemic","conformance":true,"ticks":5}"#);
    assert_eq!(status, 202, "{body}");
    wait_done(addr, &run_id(&body));
}

/// `GET /metrics` speaks Prometheus text exposition v0.0.4 and covers the
/// whole registry: executor phase histograms, traffic-class byte counters,
/// and the serve-plane counters, every family rendered with HELP/TYPE even
/// at zero. The telemetry registry is process-global (servers in parallel
/// tests share it), so values are asserted as lower bounds, not equalities.
#[test]
fn metrics_scrape_exposes_prometheus_families() {
    let server = server();
    let addr = server.addr();
    let (_, _, body) = post(addr, "/runs", EPIDEMIC_RUN);
    wait_done(addr, &run_id(&body));

    let (status, head, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.to_ascii_lowercase().contains("text/plain; version=0.0.4"), "wrong content type:\n{head}");
    for family in [
        "brace_serve_runs_total",
        "brace_serve_cache_misses_total",
        "brace_serve_cache_hits_total",
        "brace_serve_queue_depth",
        "brace_serve_run_latency_ns",
        "brace_phase_index_maintain_ns",
        "brace_phase_query_ns",
        "brace_phase_effect_merge_ns",
        "brace_phase_update_ns",
        "brace_executor_ticks_total",
        "brace_net_control_bytes_total",
        "brace_epoch_barrier_wait_ns",
    ] {
        assert!(metrics.contains(&format!("# TYPE {family} ")), "family `{family}` missing from scrape:\n{metrics}");
    }
    // The run driven above moved the serve counter and the executor phase
    // histograms; cumulative buckets end at +Inf and match _count.
    let value = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap_or_else(|| panic!("`{name}` not found in scrape"))
            .parse()
            .unwrap_or_else(|e| panic!("`{name}` is not an integer: {e}"))
    };
    assert!(value("brace_serve_runs_total") >= 1);
    assert!(value("brace_executor_ticks_total") >= 20, "the 20-tick run must have recorded its ticks");
    assert!(value("brace_phase_query_ns_count") >= 20);
    assert!(metrics.contains("brace_phase_query_ns_bucket{le=\"+Inf\"}"), "histograms must end at +Inf");
}
