//! Property-based tests on the invariants the paper's design rests on.
//!
//! * Effect aggregation is order-independent (the state-effect pattern's
//!   foundational assumption): any partition of any sequence of effect
//!   assignments, merged in any order, yields the same aggregate.
//! * The distributed spatial join equals the single-node join for *every*
//!   partitioning and visibility (the Appendix A decomposition).
//! * Replication is exactly the visible-region membership — no agent is
//!   missing where it is visible, none is shipped where it is not.
//! * Codec round-trips are lossless (checkpoints and messages cannot
//!   corrupt a world).

use brace_common::{AgentId, DetRng, Rect, Vec2};
use brace_core::{Agent, AgentSchema, Combinator, EffectTable};
use brace_mapreduce::codec;
use brace_spatial::join::{distribute, nested_loop_join, partitioned_join};
use brace_spatial::{GridPartitioning, KdTree, Partitioner, ScanIndex, SpatialIndex, UniformGrid};
use proptest::prelude::*;

fn any_combinator() -> impl Strategy<Value = Combinator> {
    prop::sample::select(Combinator::ALL.to_vec())
}

fn schema_with(comb: Combinator) -> AgentSchema {
    AgentSchema::builder("P").effect("e", comb).nonlocal_effects(true).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting an assignment stream across "partitions", aggregating
    /// partially, and ⊕-merging equals aggregating the whole stream — for
    /// every combinator, every split point, every permutation. This is the
    /// exact algebraic fact the second reduce pass relies on.
    #[test]
    fn partial_aggregation_merges_exactly(
        comb in any_combinator(),
        values in prop::collection::vec(-100.0f64..100.0, 0..24),
        split in 0usize..24,
        swap in any::<bool>(),
    ) {
        let schema = schema_with(comb);
        let split = split.min(values.len());
        // Whole-stream aggregate (lattice ops are exactly associative;
        // Sum/Prod get a tolerance below).
        let mut whole = EffectTable::new(&schema);
        whole.reset(1);
        for &v in &values {
            whole.combine(&schema, 0, brace_common::FieldId::new(0), v);
        }
        // Two partitions, merged in either order.
        let (a, b) = values.split_at(split);
        let (a, b) = if swap { (b, a) } else { (a, b) };
        let mut pa = EffectTable::new(&schema);
        pa.reset(1);
        for &v in a {
            pa.combine(&schema, 0, brace_common::FieldId::new(0), v);
        }
        let mut pb = EffectTable::new(&schema);
        pb.reset(1);
        for &v in b {
            pb.combine(&schema, 0, brace_common::FieldId::new(0), v);
        }
        pa.merge_row(&schema, 0, pb.row(0));
        let (w, m) = (whole.row(0)[0], pa.row(0)[0]);
        match comb {
            Combinator::Sum | Combinator::Prod => {
                let scale = w.abs().max(m.abs()).max(1.0);
                prop_assert!((w - m).abs() <= 1e-9 * scale, "{} vs {}", w, m);
            }
            _ => prop_assert_eq!(w.to_bits(), m.to_bits()),
        }
    }

    /// Appendix A, as a property: the partitioned spatial join equals the
    /// single-node join for arbitrary populations, visibilities and grid
    /// shapes.
    #[test]
    fn partitioned_join_always_equals_reference(
        seed in 0u64..1000,
        n in 1usize..120,
        vis in 0.0f64..30.0,
        cols in 1usize..6,
        rows in 1usize..4,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let points: Vec<Vec2> =
            (0..n).map(|_| Vec2::new(rng.range(-20.0, 120.0), rng.range(-20.0, 120.0))).collect();
        let part = GridPartitioning::uniform(Rect::from_bounds(0.0, 100.0, 0.0, 100.0), cols, rows);
        let mut reference = nested_loop_join(&points, vis);
        let mut got = partitioned_join(&points, &part, vis);
        reference.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(reference, got);
    }

    /// Replication invariant: agent a is shipped to partition p iff a lies
    /// in p's visible region.
    #[test]
    fn replication_is_exactly_visible_region_membership(
        seed in 0u64..1000,
        n in 1usize..80,
        vis in 0.0f64..25.0,
        cols in 1usize..6,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let points: Vec<Vec2> =
            (0..n).map(|_| Vec2::new(rng.range(-10.0, 110.0), rng.range(0.0, 50.0))).collect();
        let part = GridPartitioning::columns(0.0, 100.0, cols);
        let slices = distribute(&points, &part, vis);
        for (p, slice) in slices.iter().enumerate() {
            let vr = part.visible_region(brace_common::PartitionId::new(p as u32), vis);
            for (i, pt) in points.iter().enumerate() {
                let shipped = slice.visible.contains(&(i as u32));
                prop_assert_eq!(
                    shipped,
                    vr.contains(*pt),
                    "agent {} at {} vs partition {} visible region {}",
                    i, pt, p, vr
                );
            }
        }
    }

    /// All three spatial indexes answer every range query identically.
    #[test]
    fn all_indexes_agree_on_range_queries(
        seed in 0u64..1000,
        n in 0usize..150,
        probes in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..40.0), 1..8),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect();
        let kd = KdTree::build(&pts);
        let grid = UniformGrid::build(&pts);
        let scan = ScanIndex::build(&pts);
        for (x, y, r) in probes {
            let rect = Rect::centered(Vec2::new(x, y), r);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            kd.range(&rect, &mut a);
            grid.range(&rect, &mut b);
            scan.range(&rect, &mut c);
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(&a, &c, "kd vs scan");
            prop_assert_eq!(&b, &c, "grid vs scan");
        }
    }

    /// Codec round-trips preserve agents bit-for-bit, including NaN-free
    /// extremes and dead agents.
    #[test]
    fn agent_codec_round_trips(
        id in any::<u64>(),
        x in -1e12f64..1e12,
        y in -1e12f64..1e12,
        state in prop::collection::vec(-1e9f64..1e9, 0..6),
        effects in prop::collection::vec(-1e9f64..1e9, 0..6),
        alive in any::<bool>(),
    ) {
        let a = Agent { id: AgentId::new(id), pos: Vec2::new(x, y), state, effects, alive };
        let decoded = codec::decode_agents(codec::encode_agents(std::slice::from_ref(&a)));
        prop_assert_eq!(vec![a], decoded);
    }

    /// Snapshot round-trips preserve the whole worker state.
    #[test]
    fn snapshot_codec_round_trips(
        tick in any::<u64>(),
        next in any::<u64>(),
        seed in any::<u64>(),
        n in 0usize..20,
    ) {
        let schema = AgentSchema::builder("S").state("v").effect("e", Combinator::Sum).build().unwrap();
        let mut rng = DetRng::seed_from_u64(seed);
        let agents: Vec<Agent> = (0..n)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i as u64), Vec2::new(rng.unit(), rng.unit()), &schema);
                a.state[0] = rng.range(-5.0, 5.0);
                a
            })
            .collect();
        let snap = codec::WorkerSnapshot { tick, next_spawn_id: next, rng, agents };
        let back = codec::decode_snapshot(codec::encode_snapshot(&snap));
        prop_assert_eq!(snap, back);
    }

    /// All three indexes agree on k-NN (distances; ties may permute).
    #[test]
    fn all_indexes_agree_on_knn(
        seed in 0u64..1000,
        n in 0usize..120,
        k in 1usize..12,
        qx in -20.0f64..120.0,
        qy in -20.0f64..120.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect();
        let kd = KdTree::build(&pts);
        let grid = UniformGrid::build(&pts);
        let scan = ScanIndex::build(&pts);
        let q = Vec2::new(qx, qy);
        let dists = |ids: Vec<u32>| -> Vec<f64> {
            ids.into_iter().map(|i| pts[i as usize].0.dist2(q)).collect()
        };
        let a = dists(kd.k_nearest(q, k, None));
        let b = dists(grid.k_nearest(q, k, None));
        let c = dists(scan.k_nearest(q, k, None));
        prop_assert_eq!(a.len(), c.len());
        prop_assert_eq!(b.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            prop_assert!((x - z).abs() < 1e-12, "kd {} vs scan {}", x, z);
            prop_assert!((y - z).abs() < 1e-12, "grid {} vs scan {}", y, z);
        }
        // Sorted ascending.
        prop_assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }

    /// KD-tree nearest neighbor matches brute force for arbitrary inputs.
    #[test]
    fn kdtree_nearest_matches_brute_force(
        seed in 0u64..1000,
        n in 1usize..100,
        qx in -50.0f64..150.0,
        qy in -50.0f64..150.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect();
        let kd = KdTree::build(&pts);
        let q = Vec2::new(qx, qy);
        let got = kd.nearest(q, None).unwrap();
        let best = pts.iter().map(|&(p, _)| p.dist2(q)).fold(f64::INFINITY, f64::min);
        prop_assert!((pts[got as usize].0.dist2(q) - best).abs() < 1e-12);
    }
}
