//! Property-based tests on the invariants the paper's design rests on.
//!
//! * Effect aggregation is order-independent (the state-effect pattern's
//!   foundational assumption): any partition of any sequence of effect
//!   assignments, merged in any order, yields the same aggregate.
//! * The distributed spatial join equals the single-node join for *every*
//!   partitioning and visibility (the Appendix A decomposition).
//! * Replication is exactly the visible-region membership — no agent is
//!   missing where it is visible, none is shipped where it is not.
//! * Codec round-trips are lossless (checkpoints and messages cannot
//!   corrupt a world).
//! * The sharded/parallel executor phases equal the serial reference at
//!   the bit level — for every thread count, shard granule, index kind and
//!   seed (the determinism contract of `brace_core::executor`).
//! * The pool-backed executor equals the `Vec<Agent>` reference path at
//!   the bit level, and incremental index maintenance equals a fresh
//!   rebuild every tick — the contracts of the struct-of-arrays refactor.

use brace_common::ids::AgentIdGen;
use brace_common::{AgentId, DetRng, FieldId, Rect, Vec2};
use brace_core::behavior::{Behavior, Neighbors, UpdateCtx};
use brace_core::executor::{
    query_phase, query_phase_sharded_with, reference_step, update_phase, update_phase_sharded, MaintainedIndex,
    TickScratch,
};
use brace_core::{
    Agent, AgentPool, AgentRef, AgentSchema, Combinator, EffectTable, EffectWriter, IndexMaintenance, QueryKernel,
};
use brace_mapreduce::codec;
use brace_spatial::join::{distribute, nested_loop_join, partitioned_join};
use brace_spatial::{GridPartitioning, KdTree, Partitioner, ScanIndex, SpatialIndex, UniformGrid};
use proptest::prelude::*;

fn any_combinator() -> impl Strategy<Value = Combinator> {
    prop::sample::select(Combinator::ALL.to_vec())
}

fn any_index_kind() -> impl Strategy<Value = brace_spatial::IndexKind> {
    prop::sample::select(vec![
        brace_spatial::IndexKind::Scan,
        brace_spatial::IndexKind::KdTree,
        brace_spatial::IndexKind::Grid,
    ])
}

/// Local-effects model with float-valued aggregates (Sum + Min + Max):
/// every agent records, per neighbor, a distance-derived float. Local
/// effects shard-merge by copy, so the parallel path must match the serial
/// reference bit for bit even though the values are "awkward" floats.
struct LocalFloat(AgentSchema);

impl LocalFloat {
    fn new(vis: f64) -> Self {
        LocalFloat(
            AgentSchema::builder("LocalFloat")
                .state("s")
                .effect("acc", Combinator::Sum)
                .effect("near", Combinator::Min)
                .effect("far", Combinator::Max)
                .visibility(vis)
                .reachability(1.0)
                .build()
                .unwrap(),
        )
    }
}

impl Behavior for LocalFloat {
    fn schema(&self) -> &AgentSchema {
        &self.0
    }
    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            let d = my_pos.dist_linf(nb.agent.pos());
            eff.local(FieldId::new(0), d * rng.range(0.1, 1.3));
            eff.local(FieldId::new(1), d);
            eff.local(FieldId::new(2), d);
        }
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let acc = me.effect(FieldId::new(0));
        me.set(FieldId::new(0), me.get(FieldId::new(0)) + acc);
        me.pos.x += ctx.rng.range(-0.6, 0.6);
        me.pos.y += ctx.rng.range(-0.6, 0.6);
    }
}

/// Non-local model whose aggregates are exactly associative: integer Sum
/// (pings of 1.0) and lattice Min (distance). Parallel shard ⊕-merges may
/// re-associate, but on these values re-association is exact, so serial ≡
/// parallel holds at the bit level here too.
struct NonlocalExact(AgentSchema);

impl NonlocalExact {
    fn new(vis: f64) -> Self {
        NonlocalExact(
            AgentSchema::builder("NonlocalExact")
                .state("hits")
                .effect("pings", Combinator::Sum)
                .effect("near", Combinator::Min)
                .visibility(vis)
                .reachability(0.5)
                .nonlocal_effects(true)
                .build()
                .unwrap(),
        )
    }
}

impl Behavior for NonlocalExact {
    fn schema(&self) -> &AgentSchema {
        &self.0
    }
    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            eff.remote(nb.row, FieldId::new(0), 1.0);
            eff.remote(nb.row, FieldId::new(1), my_pos.dist_linf(nb.agent.pos()));
        }
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let pings = me.effect(FieldId::new(0));
        me.set(FieldId::new(0), me.get(FieldId::new(0)) + pings);
        me.pos.x += ctx.rng.range(-0.3, 0.3);
    }
}

/// Non-local model with arbitrary float aggregation: serial and sharded
/// runs may legitimately differ in the last bit (re-association), but any
/// two runs of the *same shard plan* must agree bitwise regardless of
/// thread count — that is the determinism contract.
struct NonlocalFloat(AgentSchema);

impl NonlocalFloat {
    fn new(vis: f64) -> Self {
        NonlocalFloat(
            AgentSchema::builder("NonlocalFloat")
                .effect("w", Combinator::Sum)
                .visibility(vis)
                .reachability(0.5)
                .nonlocal_effects(true)
                .build()
                .unwrap(),
        )
    }
}

impl Behavior for NonlocalFloat {
    fn schema(&self) -> &AgentSchema {
        &self.0
    }
    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            eff.remote(nb.row, FieldId::new(0), (my_pos.x - nb.agent.pos().x) * rng.range(0.01, 2.7));
        }
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        me.pos.y += ctx.rng.range(-0.2, 0.2);
    }
}

/// Update-phase model exercising spawns, kills and RNG in one pass.
struct Churn(AgentSchema);

impl Churn {
    fn new() -> Self {
        Churn(AgentSchema::builder("Churn").state("age").visibility(1.0).reachability(2.0).build().unwrap())
    }
}

impl Behavior for Churn {
    fn schema(&self) -> &AgentSchema {
        &self.0
    }
    fn query(&self, _m: AgentRef<'_>, _n: &Neighbors<'_>, _e: &mut EffectWriter<'_>, _rng: &mut DetRng) {}
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        me.set(FieldId::new(0), me.get(FieldId::new(0)) + 1.0);
        if ctx.rng.chance(0.15) {
            ctx.spawn(me.pos + Vec2::new(0.1, -0.1), vec![0.0]);
        }
        if ctx.rng.chance(0.1) {
            me.alive = false;
        }
        me.pos.x += ctx.rng.range(-1.5, 1.5);
    }
}

/// Churn plus a float-effect query: the full lifecycle model for the
/// pool ≡ reference end-to-end property (spawns, kills, movement, effect
/// aggregation all in one world).
struct ChurnField(AgentSchema);

impl ChurnField {
    fn new(vis: f64) -> Self {
        ChurnField(
            AgentSchema::builder("ChurnField")
                .state("age")
                .effect("mass", Combinator::Sum)
                .effect("near", Combinator::Min)
                .visibility(vis)
                .reachability(1.5)
                .build()
                .unwrap(),
        )
    }
}

impl Behavior for ChurnField {
    fn schema(&self) -> &AgentSchema {
        &self.0
    }
    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            let d = my_pos.dist_linf(nb.agent.pos());
            eff.local(FieldId::new(0), 1.0 / (1.0 + d));
            eff.local(FieldId::new(1), d);
        }
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        me.set(FieldId::new(0), me.get(FieldId::new(0)) + 1.0);
        let mass = me.effect(FieldId::new(0));
        if ctx.rng.chance(0.1) && mass < 3.0 {
            ctx.spawn(me.pos + Vec2::new(0.2, 0.2), vec![0.0]);
        }
        if ctx.rng.chance(0.08) {
            me.alive = false;
            return;
        }
        me.pos.x += ctx.rng.range(-1.2, 1.2);
        me.pos.y += ctx.rng.range(-1.2, 1.2);
    }
}

/// Collecting k-NN helper for assertions over `k_nearest_into`.
fn knn<I: SpatialIndex>(idx: &I, q: Vec2, k: usize) -> Vec<u32> {
    let mut out = Vec::new();
    idx.k_nearest_into(q, k, None, &mut out);
    out
}

fn random_population(schema: &AgentSchema, n: usize, seed: u64) -> Vec<Agent> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, 40.0), rng.range(0.0, 40.0)), schema))
        .collect()
}

/// Assert two effect tables agree bitwise on every row.
fn assert_tables_bit_identical(a: &EffectTable, b: &EffectTable, rows: usize) -> Result<(), String> {
    for r in 0..rows as u32 {
        let (ra, rb) = (a.row(r), b.row(r));
        let same = ra.len() == rb.len() && ra.iter().zip(&rb).all(|(x, y)| x.to_bits() == y.to_bits());
        if !same {
            return Err(format!("row {r} differs: {ra:?} vs {rb:?}"));
        }
    }
    Ok(())
}

fn schema_with(comb: Combinator) -> AgentSchema {
    AgentSchema::builder("P").effect("e", comb).nonlocal_effects(true).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting an assignment stream across "partitions", aggregating
    /// partially, and ⊕-merging equals aggregating the whole stream — for
    /// every combinator, every split point, every permutation. This is the
    /// exact algebraic fact the second reduce pass relies on.
    #[test]
    fn partial_aggregation_merges_exactly(
        comb in any_combinator(),
        values in prop::collection::vec(-100.0f64..100.0, 0..24),
        split in 0usize..24,
        swap in any::<bool>(),
    ) {
        let schema = schema_with(comb);
        let split = split.min(values.len());
        // Whole-stream aggregate (lattice ops are exactly associative;
        // Sum/Prod get a tolerance below).
        let mut whole = EffectTable::new(&schema);
        whole.reset(1);
        for &v in &values {
            whole.combine(0, brace_common::FieldId::new(0), v);
        }
        // Two partitions, merged in either order.
        let (a, b) = values.split_at(split);
        let (a, b) = if swap { (b, a) } else { (a, b) };
        let mut pa = EffectTable::new(&schema);
        pa.reset(1);
        for &v in a {
            pa.combine(0, brace_common::FieldId::new(0), v);
        }
        let mut pb = EffectTable::new(&schema);
        pb.reset(1);
        for &v in b {
            pb.combine(0, brace_common::FieldId::new(0), v);
        }
        pa.merge_row(0, &pb.row(0));
        let (w, m) = (whole.row(0)[0], pa.row(0)[0]);
        match comb {
            Combinator::Sum | Combinator::Prod => {
                let scale = w.abs().max(m.abs()).max(1.0);
                prop_assert!((w - m).abs() <= 1e-9 * scale, "{} vs {}", w, m);
            }
            _ => prop_assert_eq!(w.to_bits(), m.to_bits()),
        }
    }

    /// Appendix A, as a property: the partitioned spatial join equals the
    /// single-node join for arbitrary populations, visibilities and grid
    /// shapes.
    #[test]
    fn partitioned_join_always_equals_reference(
        seed in 0u64..1000,
        n in 1usize..120,
        vis in 0.0f64..30.0,
        cols in 1usize..6,
        rows in 1usize..4,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let points: Vec<Vec2> =
            (0..n).map(|_| Vec2::new(rng.range(-20.0, 120.0), rng.range(-20.0, 120.0))).collect();
        let part = GridPartitioning::uniform(Rect::from_bounds(0.0, 100.0, 0.0, 100.0), cols, rows);
        let mut reference = nested_loop_join(&points, vis);
        let mut got = partitioned_join(&points, &part, vis);
        reference.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(reference, got);
    }

    /// Replication invariant: agent a is shipped to partition p iff a lies
    /// in p's visible region.
    #[test]
    fn replication_is_exactly_visible_region_membership(
        seed in 0u64..1000,
        n in 1usize..80,
        vis in 0.0f64..25.0,
        cols in 1usize..6,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let points: Vec<Vec2> =
            (0..n).map(|_| Vec2::new(rng.range(-10.0, 110.0), rng.range(0.0, 50.0))).collect();
        let part = GridPartitioning::columns(0.0, 100.0, cols);
        let slices = distribute(&points, &part, vis);
        for (p, slice) in slices.iter().enumerate() {
            let vr = part.visible_region(brace_common::PartitionId::new(p as u32), vis);
            for (i, pt) in points.iter().enumerate() {
                let shipped = slice.visible.contains(&(i as u32));
                prop_assert_eq!(
                    shipped,
                    vr.contains(*pt),
                    "agent {} at {} vs partition {} visible region {}",
                    i, pt, p, vr
                );
            }
        }
    }

    /// All three spatial indexes answer every range query identically.
    #[test]
    fn all_indexes_agree_on_range_queries(
        seed in 0u64..1000,
        n in 0usize..150,
        probes in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..40.0), 1..8),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect();
        let kd = KdTree::build(&pts);
        let grid = UniformGrid::build(&pts);
        let scan = ScanIndex::build(&pts);
        for (x, y, r) in probes {
            let rect = Rect::centered(Vec2::new(x, y), r);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            kd.range(&rect, &mut a);
            grid.range(&rect, &mut b);
            scan.range(&rect, &mut c);
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(&a, &c, "kd vs scan");
            prop_assert_eq!(&b, &c, "grid vs scan");
        }
    }

    /// Codec round-trips preserve agents bit-for-bit, including NaN-free
    /// extremes and dead agents.
    #[test]
    fn agent_codec_round_trips(
        id in any::<u64>(),
        x in -1e12f64..1e12,
        y in -1e12f64..1e12,
        state in prop::collection::vec(-1e9f64..1e9, 0..6),
        effects in prop::collection::vec(-1e9f64..1e9, 0..6),
        alive in any::<bool>(),
    ) {
        let a = Agent { id: AgentId::new(id), pos: Vec2::new(x, y), state, effects, alive };
        let decoded = codec::decode_agents(codec::encode_agents(std::slice::from_ref(&a)));
        prop_assert_eq!(vec![a], decoded);
    }

    /// Pool conversion round-trips preserve agents bit-for-bit: the
    /// serialization boundary (checkpoints, transfers) cannot corrupt a
    /// world that passed through the columnar representation.
    #[test]
    fn pool_conversion_round_trips(
        seed in 0u64..10_000,
        n in 0usize..60,
        n_states in 0usize..4,
        n_effects in 0usize..4,
    ) {
        let mut b = AgentSchema::builder("RT");
        for i in 0..n_states {
            b = b.state(format!("s{i}"));
        }
        for i in 0..n_effects {
            b = b.effect(format!("e{i}"), Combinator::Sum);
        }
        let schema = b.build().unwrap();
        let mut rng = DetRng::seed_from_u64(seed);
        let agents: Vec<Agent> = (0..n)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i as u64), Vec2::new(rng.unit(), rng.unit()), &schema);
                for s in &mut a.state {
                    *s = rng.range(-1e6, 1e6);
                }
                for e in &mut a.effects {
                    *e = rng.range(-1e6, 1e6);
                }
                a.alive = rng.chance(0.9);
                a
            })
            .collect();
        let pool = AgentPool::from_agents(&schema, &agents);
        prop_assert_eq!(pool.to_agents(), agents);
    }

    /// Snapshot round-trips preserve the whole worker state.
    #[test]
    fn snapshot_codec_round_trips(
        tick in any::<u64>(),
        next in any::<u64>(),
        seed in any::<u64>(),
        n in 0usize..20,
    ) {
        let schema = AgentSchema::builder("S").state("v").effect("e", Combinator::Sum).build().unwrap();
        let mut rng = DetRng::seed_from_u64(seed);
        let agents: Vec<Agent> = (0..n)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i as u64), Vec2::new(rng.unit(), rng.unit()), &schema);
                a.state[0] = rng.range(-5.0, 5.0);
                a
            })
            .collect();
        let snap = codec::WorkerSnapshot { tick, next_spawn_id: next, rng, agents };
        let back = codec::decode_snapshot(codec::encode_snapshot(&snap));
        prop_assert_eq!(snap, back);
    }

    /// All three indexes agree on k-NN — exactly, including ties, because
    /// every implementation breaks ties by ascending payload.
    #[test]
    fn all_indexes_agree_on_knn(
        seed in 0u64..1000,
        n in 0usize..120,
        k in 1usize..12,
        qx in -20.0f64..120.0,
        qy in -20.0f64..120.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect();
        let kd = KdTree::build(&pts);
        let grid = UniformGrid::build(&pts);
        let scan = ScanIndex::build(&pts);
        let q = Vec2::new(qx, qy);
        let a = knn(&kd, q, k);
        let b = knn(&grid, q, k);
        let c = knn(&scan, q, k);
        prop_assert_eq!(&a, &c, "kd vs scan");
        prop_assert_eq!(&b, &c, "grid vs scan");
        // Sorted ascending by distance, and buffer-reuse variant agrees.
        let dists: Vec<f64> = c.iter().map(|&i| pts[i as usize].0.dist2(q)).collect();
        prop_assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        let mut buf = vec![7u32; 3];
        kd.k_nearest_into(q, k, None, &mut buf);
        prop_assert_eq!(buf, a);
    }

    /// KD-tree nearest neighbor matches brute force for arbitrary inputs.
    #[test]
    fn kdtree_nearest_matches_brute_force(
        seed in 0u64..1000,
        n in 1usize..100,
        qx in -50.0f64..150.0,
        qy in -50.0f64..150.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0)), i as u32)).collect();
        let kd = KdTree::build(&pts);
        let q = Vec2::new(qx, qy);
        let got = kd.nearest(q, None).unwrap();
        let best = pts.iter().map(|&(p, _)| p.dist2(q)).fold(f64::INFINITY, f64::min);
        prop_assert!((pts[got as usize].0.dist2(q) - best).abs() < 1e-12);
    }

    /// Incrementally maintained indexes answer every query exactly like a
    /// fresh rebuild over the moved points — across several rounds of
    /// bounded motion, for every index kind, including after lazy
    /// restructuring (`maintain`).
    #[test]
    fn incremental_maintenance_equals_fresh_rebuild(
        seed in 0u64..10_000,
        n in 1usize..120,
        rounds in 1usize..6,
        move_frac in 0.0f64..1.0,
        step in 0.0f64..2.0,
        k in 1usize..8,
        budget in 0.0f64..3.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 60.0), rng.range(0.0, 60.0)), i as u32)).collect();
        let mut kd = KdTree::build(&pts);
        let mut grid = UniformGrid::build(&pts);
        let mut scan = ScanIndex::build(&pts);
        for _ in 0..rounds {
            let mut moved: Vec<(u32, Vec2)> = Vec::new();
            for &(p, payload) in &pts {
                if rng.chance(move_frac) {
                    moved.push((payload, p + Vec2::new(rng.range(-step, step), rng.range(-step, step))));
                }
            }
            for &(payload, new) in &moved {
                pts[payload as usize].0 = new;
            }
            // The KD-tree declines dense batches by contract (a rebuild
            // is cheaper); the caller rebuilds — same as the executor.
            if !kd.update(&moved) {
                kd = KdTree::build(&pts);
            }
            prop_assert!(grid.update(&moved), "grid update must apply for dense payloads");
            prop_assert!(scan.update(&moved), "scan update must apply for dense payloads");
            kd.maintain(budget);
            grid.maintain(budget);
            scan.maintain(budget);
            let fresh = KdTree::build(&pts);
            for _ in 0..8 {
                let q = Vec2::new(rng.range(-10.0, 70.0), rng.range(-10.0, 70.0));
                let rect = Rect::centered(q, rng.range(0.0, 10.0));
                let mut want = Vec::new();
                fresh.range(&rect, &mut want);
                want.sort_unstable();
                for (name, got) in [
                    ("kd", {
                        let mut v = Vec::new();
                        kd.range(&rect, &mut v);
                        v
                    }),
                    ("grid", {
                        let mut v = Vec::new();
                        grid.range(&rect, &mut v);
                        v
                    }),
                    ("scan", {
                        let mut v = Vec::new();
                        scan.range(&rect, &mut v);
                        v
                    }),
                ] {
                    let mut got = got;
                    got.sort_unstable();
                    prop_assert_eq!(&got, &want, "{} range diverged after incremental updates", name);
                }
                let want_knn = knn(&fresh, q, k);
                prop_assert_eq!(&knn(&kd, q, k), &want_knn, "kd k-NN diverged");
                prop_assert_eq!(&knn(&grid, q, k), &want_knn, "grid k-NN diverged");
                prop_assert_eq!(&knn(&scan, q, k), &want_knn, "scan k-NN diverged");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel executor ≡ serial executor (the sharded determinism contract)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Local-effect schemas: the sharded query phase must equal the serial
    /// reference bit for bit — for every index kind, shard granule, thread
    /// count, population and visibility. Shards merge disjoint row slices
    /// by copy, so no float re-association can occur.
    #[test]
    fn sharded_query_equals_serial_for_local_effects(
        seed in 0u64..10_000,
        n in 1usize..220,
        owned_frac in 0.3f64..1.0,
        vis in 0.4f64..8.0,
        kind in any_index_kind(),
        shard_rows in 1usize..40,
        threads in 1usize..5,
    ) {
        let b = LocalFloat::new(vis);
        let agents = random_population(b.schema(), n, seed);
        let n_owned = ((n as f64 * owned_frac) as usize).max(1);
        let pool = AgentPool::from_agents(b.schema(), &agents);
        let mut serial = EffectTable::new(b.schema());
        let s_stats = query_phase(&b, &pool, n_owned, kind, &mut serial, 3, seed);
        let mut sh_pool = AgentPool::from_agents(b.schema(), &agents);
        let mut index = MaintainedIndex::new(kind);
        let mut scratch = TickScratch::new();
        let p_stats = query_phase_sharded_with(
            &b, &mut sh_pool, n_owned, &mut index, 3, seed, &mut scratch, shard_rows, threads,
            QueryKernel::Batched,
        );
        prop_assert_eq!(s_stats.neighbor_visits, p_stats.neighbor_visits);
        prop_assert_eq!(s_stats.nonlocal_writes, p_stats.nonlocal_writes);
        assert_tables_bit_identical(&serial, sh_pool.effects(), n)?;
    }

    /// Non-local schemas whose aggregation is exactly associative (integer
    /// Sum, lattice Min): shard ⊕-merges re-associate, but on these values
    /// re-association is exact, so parallel must still equal serial at the
    /// bit level — including the partial rows of replica agents.
    #[test]
    fn sharded_query_equals_serial_for_exact_nonlocal_effects(
        seed in 0u64..10_000,
        n in 2usize..160,
        owned_frac in 0.3f64..1.0,
        vis in 0.4f64..8.0,
        kind in any_index_kind(),
        shard_rows in 1usize..40,
        threads in 1usize..5,
    ) {
        let b = NonlocalExact::new(vis);
        let agents = random_population(b.schema(), n, seed);
        let n_owned = ((n as f64 * owned_frac) as usize).max(1);
        let pool = AgentPool::from_agents(b.schema(), &agents);
        let mut serial = EffectTable::new(b.schema());
        query_phase(&b, &pool, n_owned, kind, &mut serial, 1, seed);
        let mut sh_pool = AgentPool::from_agents(b.schema(), &agents);
        let mut index = MaintainedIndex::new(kind);
        let mut scratch = TickScratch::new();
        query_phase_sharded_with(
            &b, &mut sh_pool, n_owned, &mut index, 1, seed, &mut scratch, shard_rows, threads,
            QueryKernel::Batched,
        );
        assert_tables_bit_identical(&serial, sh_pool.effects(), n)?;
    }

    /// Non-local schemas with arbitrary float aggregation: the thread count
    /// must never influence the result — only the (deterministic) shard
    /// plan defines the reduction tree. Same granule, different thread
    /// counts ⇒ bitwise identical tables.
    #[test]
    fn sharded_query_is_thread_count_invariant_for_float_nonlocal(
        seed in 0u64..10_000,
        n in 2usize..180,
        vis in 0.4f64..8.0,
        kind in any_index_kind(),
        shard_rows in 1usize..30,
        threads_a in 1usize..6,
        threads_b in 1usize..6,
    ) {
        let b = NonlocalFloat::new(vis);
        let agents = random_population(b.schema(), n, seed);
        let run = |threads: usize| {
            let mut pool = AgentPool::from_agents(b.schema(), &agents);
            let mut index = MaintainedIndex::new(kind);
            let mut scratch = TickScratch::new();
            query_phase_sharded_with(
                &b, &mut pool, n, &mut index, 2, seed, &mut scratch, shard_rows, threads,
                QueryKernel::Batched,
            );
            pool
        };
        let (pa, pb) = (run(threads_a), run(threads_b));
        assert_tables_bit_identical(pa.effects(), pb.effects(), n)?;
    }

    /// The sharded update phase (spawns, kills, RNG, movement cropping)
    /// must reproduce the serial reference exactly for every thread count:
    /// same survivors, same new states, same spawn ids in the same order.
    #[test]
    fn sharded_update_equals_serial(
        seed in 0u64..10_000,
        n in 1usize..300,
        threads in 1usize..6,
        tick in 0u64..50,
    ) {
        let b = Churn::new();
        let mut serial_agents = random_population(b.schema(), n, seed);
        let mut pool = AgentPool::from_agents(b.schema(), &serial_agents);
        let mut gen_a = AgentIdGen::from(n as u64);
        let mut gen_b = AgentIdGen::from(n as u64);
        let s = update_phase(&b, &mut serial_agents, tick, seed, &mut gen_a);
        let mut scratch = TickScratch::new();
        let p = update_phase_sharded(&b, &mut pool, tick, seed, &mut gen_b, &mut scratch, threads);
        prop_assert_eq!(s.spawned, p.spawned);
        prop_assert_eq!(s.killed, p.killed);
        prop_assert_eq!(serial_agents, pool.to_agents());
    }

    /// End to end: a multi-tick simulation stepped under different thread
    /// budgets converges on bitwise-identical worlds (local-effect model,
    /// spawning population crossing shard boundaries).
    #[test]
    fn executor_is_parallelism_invariant_end_to_end(
        seed in 0u64..10_000,
        n in 2usize..120,
        vis in 0.5f64..5.0,
        kind in any_index_kind(),
        threads in 2usize..5,
    ) {
        let run = |parallelism: usize| {
            let b = LocalFloat::new(vis);
            let agents = random_population(b.schema(), n, seed);
            let mut exec = brace_core::TickExecutor::new(b, agents, kind, seed);
            exec.set_parallelism(parallelism);
            exec.run(6);
            exec.agents()
        };
        prop_assert_eq!(run(1), run(threads));
    }

    /// End to end: the pool-backed sharded executor (persistent scratch,
    /// incremental index maintenance, columnar effects) produces a world
    /// bit-identical to the `Vec<Agent>` reference path (per-tick pool
    /// conversion, fresh index build, serial phases) — across seeds,
    /// models with churn, visibilities and every index kind.
    #[test]
    fn pool_executor_equals_vec_agent_reference(
        seed in 0u64..10_000,
        n in 2usize..100,
        vis in 0.5f64..5.0,
        kind in any_index_kind(),
        ticks in 1u64..6,
        threads in 1usize..4,
    ) {
        let b = ChurnField::new(vis);
        let mut world = random_population(b.schema(), n, seed);
        let mut exec = brace_core::TickExecutor::new(ChurnField::new(vis), world.clone(), kind, seed);
        exec.set_parallelism(threads);
        let mut id_gen = AgentIdGen::from(n as u64);
        for tick in 0..ticks {
            exec.step();
            reference_step(&b, &mut world, kind, tick, seed, &mut id_gen);
        }
        prop_assert_eq!(exec.agents(), world);
    }

    /// End to end: incremental index maintenance never changes results —
    /// the executor under `Incremental` equals the executor under
    /// `Rebuild` bit for bit, for every model shape and index kind.
    #[test]
    fn incremental_executor_equals_rebuild_executor(
        seed in 0u64..10_000,
        n in 2usize..120,
        vis in 0.5f64..5.0,
        kind in any_index_kind(),
        ticks in 1u64..8,
    ) {
        let run = |mode: IndexMaintenance| {
            let b = LocalFloat::new(vis);
            let agents = random_population(b.schema(), n, seed);
            let mut exec = brace_core::TickExecutor::new(b, agents, kind, seed);
            exec.set_index_maintenance(mode);
            exec.run(ticks);
            exec.agents()
        };
        prop_assert_eq!(run(IndexMaintenance::Incremental), run(IndexMaintenance::Rebuild));
    }
}

// ---------------------------------------------------------------------------
// Kernel conformance: batched lane kernels ≡ scalar per-row paths, bitwise
// (the contract of the `kernels` layer; CI reruns this section with
// PROPTEST_CASES=256)
// ---------------------------------------------------------------------------

use brace_models::{
    fish, traffic, FishBehavior, FishParams, PredatorBehavior, PredatorParams, TrafficBehavior, TrafficParams,
};

/// Point sets that stress the lane kernels' compare/select paths: ordinary
/// coordinates salted with signed zeros, subnormals and coincident pairs
/// (NaN-free — NaN positions are a model bug the executor debug-asserts
/// against).
fn edge_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut pts: Vec<(Vec2, u32)> =
        (0..n).map(|i| (Vec2::new(rng.range(-40.0, 40.0), rng.range(-40.0, 40.0)), i as u32)).collect();
    for i in 0..n {
        match i % 9 {
            1 => pts[i].0.x = 0.0,
            3 => pts[i].0.y = -0.0,
            5 => pts[i].0.x = f64::from_bits(1),   // smallest subnormal
            7 if i > 0 => pts[i].0 = pts[i - 1].0, // coincident pair
            _ => {}
        }
    }
    pts
}

/// Bitwise world equality: stricter than `Agent == Agent` (which treats
/// `0.0 == -0.0`), because the kernel contract is bit-identity.
fn worlds_bit_identical(a: &[Agent], b: &[Agent]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("world sizes differ: {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        let same = x.id == y.id
            && x.alive == y.alive
            && x.pos.x.to_bits() == y.pos.x.to_bits()
            && x.pos.y.to_bits() == y.pos.y.to_bits()
            && x.state.len() == y.state.len()
            && x.state.iter().zip(&y.state).all(|(u, v)| u.to_bits() == v.to_bits())
            && x.effects.len() == y.effects.len()
            && x.effects.iter().zip(&y.effects).all(|(u, v)| u.to_bits() == v.to_bits());
        if !same {
            return Err(format!("agent {} diverged:\n  batched: {:?}\n  scalar:  {:?}", x.id, x, y));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Range filter: for every index kind, the batched path (coarse
    /// emission + lane-kernel containment) produces exactly the candidates
    /// of the scalar `range` — the same *sequence* for canonical indexes
    /// (scan, grid), the same *set* for the KD-tree — across random
    /// populations including empty/singleton sets, signed zeros, denormals
    /// and coincident points.
    #[test]
    fn kernel_range_filter_batched_equals_scalar(
        seed in 0u64..10_000,
        n in 0usize..170,
        probes in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0.0f64..30.0), 1..8),
    ) {
        let pts = edge_points(n, seed);
        let kd = KdTree::build(&pts);
        let grid = UniformGrid::build(&pts);
        let scan = ScanIndex::build(&pts);
        for (x, y, r) in probes {
            let rect = Rect::centered(Vec2::new(x, y), r);
            let (mut batched, mut scalar) = (Vec::new(), Vec::new());
            scan.range_batch(&rect, &mut batched);
            scan.range(&rect, &mut scalar);
            prop_assert_eq!(&batched, &scalar, "scan sequence diverged");
            batched.clear();
            scalar.clear();
            grid.range_batch(&rect, &mut batched);
            grid.range(&rect, &mut scalar);
            prop_assert_eq!(&batched, &scalar, "grid sequence diverged");
            batched.clear();
            scalar.clear();
            kd.range_batch(&rect, &mut batched);
            kd.range(&rect, &mut scalar);
            batched.sort_unstable();
            scalar.sort_unstable();
            prop_assert_eq!(&batched, &scalar, "kd set diverged");
        }
    }

    /// Grid bucket arena under churn: across rounds of migration (bounded
    /// moves, applied through `update`), spawns and kills (row-mapping
    /// changes, applied through a rebuild — exactly the executor's
    /// contract), the incrementally maintained grid's native-batched
    /// emission, its scalar emission, and a fresh build over the same
    /// point set are all bit-identical — and globally ascending by
    /// payload, the canonical order the pre-arena grid emitted. This pins
    /// the SoA arena (run relocation, slack slots, dead-slot compaction)
    /// as invisible to every query path.
    #[test]
    fn grid_arena_churn_preserves_canonical_emission(
        seed in 0u64..10_000,
        n in 1usize..120,
        cell in 0.5f64..12.0,
        rounds in 1usize..6,
        move_frac in 0.0f64..1.0,
        step in 0.0f64..15.0,
        churn in 0.0f64..0.4,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut pts: Vec<(Vec2, u32)> =
            (0..n).map(|i| (Vec2::new(rng.range(0.0, 60.0), rng.range(0.0, 60.0)), i as u32)).collect();
        let mut grid = UniformGrid::with_cell(&pts, cell);
        for _ in 0..rounds {
            // Migration: bounded moves through the incremental path (large
            // steps cross buckets, forcing run relocation in the arena).
            let mut moved: Vec<(u32, Vec2)> = Vec::new();
            for &(p, payload) in &pts {
                if rng.chance(move_frac) {
                    moved.push((payload, p + Vec2::new(rng.range(-step, step), rng.range(-step, step))));
                }
            }
            for &(payload, new) in &moved {
                pts[payload as usize].0 = new;
            }
            prop_assert!(grid.update(&moved), "grid update must apply for dense payloads");
            // Spawns and kills change the row mapping; the executor
            // rebuilds (`MaintainedIndex` falls back on mapping changes) —
            // with compacted payloads, as the pool compacts rows.
            if rng.chance(churn) {
                let kills = (rng.below(1 + pts.len() as u64 / 4)) as usize;
                for _ in 0..kills.min(pts.len().saturating_sub(1)) {
                    let victim = rng.below(pts.len() as u64) as usize;
                    pts.swap_remove(victim);
                }
                let spawns = rng.below(12);
                for _ in 0..spawns {
                    pts.push((Vec2::new(rng.range(0.0, 60.0), rng.range(0.0, 60.0)), 0));
                }
                for (i, p) in pts.iter_mut().enumerate() {
                    p.1 = i as u32;
                }
                grid = UniformGrid::with_cell(&pts, cell);
            }
            let fresh = UniformGrid::with_cell(&pts, cell);
            for _ in 0..6 {
                let q = Vec2::new(rng.range(-10.0, 70.0), rng.range(-10.0, 70.0));
                let rect = Rect::centered(q, rng.range(0.0, 20.0));
                let (mut batched, mut scalar, mut rebuilt) = (Vec::new(), Vec::new(), Vec::new());
                grid.range_batch(&rect, &mut batched);
                grid.range(&rect, &mut scalar);
                fresh.range_batch(&rect, &mut rebuilt);
                prop_assert_eq!(&batched, &scalar, "maintained grid: batched vs scalar diverged");
                prop_assert_eq!(&batched, &rebuilt, "maintained vs fresh-build emission diverged");
                prop_assert!(batched.windows(2).all(|w| w[0] < w[1]), "emission not ascending: {:?}", batched);
            }
        }
    }

    /// k-NN: the batched gather (squared distances as one lane kernel over
    /// the columns) selects exactly the scalar brute-force sequence —
    /// canonical (distance, payload) order, exclusion respected — for
    /// every index kind, including empty and singleton point sets.
    #[test]
    fn kernel_knn_batched_equals_scalar(
        seed in 0u64..10_000,
        n in 0usize..140,
        k in 1usize..10,
        qx in -50.0f64..50.0,
        qy in -50.0f64..50.0,
        exclude in 0u32..150,
    ) {
        let pts = edge_points(n, seed);
        let q = Vec2::new(qx, qy);
        let exclude = if n == 0 { None } else { Some(exclude % n as u32) };
        // Scalar reference: the exact per-point arithmetic and canonical
        // selection the batched path must reproduce.
        let mut want: Vec<(f64, u32)> = pts
            .iter()
            .filter(|&&(_, pl)| Some(pl) != exclude)
            .map(|&(p, pl)| (p.dist2(q), pl))
            .collect();
        want.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        want.truncate(k);
        let want: Vec<u32> = want.into_iter().map(|(_, pl)| pl).collect();
        for (name, got) in [
            ("scan", {
                let mut out = Vec::new();
                ScanIndex::build(&pts).k_nearest_into(q, k, exclude, &mut out);
                out
            }),
            ("grid", {
                let mut out = Vec::new();
                UniformGrid::build(&pts).k_nearest_into(q, k, exclude, &mut out);
                out
            }),
            ("kd", {
                let mut out = Vec::new();
                KdTree::build(&pts).k_nearest_into(q, k, exclude, &mut out);
                out
            }),
        ] {
            prop_assert_eq!(&got, &want, "{} k-NN diverged from scalar reference", name);
        }
    }

    /// Fish forces: the batched force kernel (vectorized distances and
    /// unit directions, ordered emission) is bit-identical to the scalar
    /// per-row query over multi-tick runs — random schools salted with a
    /// coincident pair (distance zero exercises the degenerate-direction
    /// select), every index kind, serial and sharded-parallel.
    #[test]
    fn kernel_fish_forces_batched_equals_scalar(
        seed in 0u64..10_000,
        n in 0usize..90,
        kind in any_index_kind(),
        ticks in 1u64..5,
        threads in 1usize..4,
    ) {
        let params = FishParams { school_radius: 8.0, ..FishParams::default() };
        let mut pop = FishBehavior::new(params.clone()).population(n, seed);
        if n >= 2 {
            pop[1].pos = pop[0].pos; // coincident pair
        }
        let run = |kernel: QueryKernel| {
            let mut exec =
                brace_core::TickExecutor::new(FishBehavior::new(params.clone()), pop.clone(), kind, seed);
            exec.set_parallelism(threads);
            exec.set_query_kernel(kernel);
            exec.run(ticks);
            exec.agents()
        };
        worlds_bit_identical(&run(QueryKernel::Batched), &run(QueryKernel::Scalar))?;
    }

    /// Traffic gap scan: the batched kernel (vectorized offsets/gaps,
    /// ordered nearest-per-lane fold) is bit-identical to the scalar query
    /// over multi-tick runs with churn (exit + respawn), for both probe
    /// modes (range scan and k-NN) and every index kind.
    #[test]
    fn kernel_traffic_gap_scan_batched_equals_scalar(
        seed in 0u64..10_000,
        lanes in 1usize..5,
        density in 0.005f64..0.04,
        kind in any_index_kind(),
        ticks in 1u64..5,
        use_knn in any::<bool>(),
    ) {
        let params = TrafficParams {
            segment: 600.0,
            lanes,
            density,
            knn: use_knn.then_some(6),
            // Engage the gap-scan kernel (below the cost threshold by
            // default) so the equivalence under test is actually exercised.
            batch_engagement: Some(true),
            ..TrafficParams::default()
        };
        let pop = TrafficBehavior::new(params.clone()).population(seed);
        let run = |kernel: QueryKernel| {
            let mut exec =
                brace_core::TickExecutor::new(TrafficBehavior::new(params.clone()), pop.clone(), kind, seed);
            exec.set_query_kernel(kernel);
            exec.run(ticks);
            exec.agents()
        };
        worlds_bit_identical(&run(QueryKernel::Batched), &run(QueryKernel::Scalar))?;
    }

    /// Predator bite scan: the batched kernel (vectorized damage columns in
    /// both role assignments, scalar-gated emission in canonical candidate
    /// order) is bit-identical to the scalar query over multi-tick runs
    /// with the full population dynamics (bites, deaths, spawns), in both
    /// the non-local and the hand-inverted local form, for every index
    /// kind, serial and sharded-parallel.
    #[test]
    fn kernel_predator_bite_scan_batched_equals_scalar(
        seed in 0u64..10_000,
        n in 0usize..90,
        kind in any_index_kind(),
        ticks in 1u64..5,
        threads in 1usize..4,
        nonlocal in any::<bool>(),
    ) {
        let params = PredatorParams {
            nonlocal,
            // Engage the bite-scan kernel (below the cost threshold by
            // default) so the equivalence under test is actually exercised.
            batch_engagement: Some(true),
            ..PredatorParams::default()
        };
        let mut pop = PredatorBehavior::new(params.clone()).population(n, 12.0, seed);
        if n >= 2 {
            pop[1].pos = pop[0].pos; // coincident pair still scans cleanly
        }
        let run = |kernel: QueryKernel| {
            let mut exec =
                brace_core::TickExecutor::new(PredatorBehavior::new(params.clone()), pop.clone(), kind, seed);
            exec.set_parallelism(threads);
            exec.set_query_kernel(kernel);
            exec.run(ticks);
            exec.agents()
        };
        worlds_bit_identical(&run(QueryKernel::Batched), &run(QueryKernel::Scalar))?;
    }

    /// The model kernels' scalar tails, property-sized: candidate counts
    /// straddling the lane width produce per-element results identical to
    /// the shared scalar helpers (spot-checked against the per-candidate
    /// definitions; the `brace_spatial::kernels` unit tests pin the exact
    /// 0 / 1 / LANES±1 / 2·LANES−1 counts).
    #[test]
    fn kernel_model_maps_match_scalar_helpers(
        seed in 0u64..10_000,
        n in 0usize..11,
        mx in -5.0f64..5.0,
        my in -5.0f64..5.0,
    ) {
        let pts = edge_points(n, seed);
        let xs: Vec<f64> = pts.iter().map(|&(p, _)| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|&(p, _)| p.y).collect();
        let (mut d2, mut ux, mut uy) = (Vec::new(), Vec::new(), Vec::new());
        fish::force_kernel(&xs, &ys, mx, my, &mut d2, &mut ux, &mut uy);
        let (mut dx, mut lead, mut rear) = (Vec::new(), Vec::new(), Vec::new());
        traffic::gap_kernel(&xs, mx, 5.0, &mut dx, &mut lead, &mut rear);
        for i in 0..n {
            // Fish: the scalar definition, op for op.
            let (sdx, sdy) = (xs[i] - mx, ys[i] - my);
            let sd2 = sdx * sdx + sdy * sdy;
            let sd = sd2.sqrt();
            let (sux, suy) = if sd > f64::EPSILON { (sdx / sd, sdy / sd) } else { (0.0, 0.0) };
            prop_assert_eq!(d2[i].to_bits(), sd2.to_bits());
            prop_assert_eq!(ux[i].to_bits(), sux.to_bits());
            prop_assert_eq!(uy[i].to_bits(), suy.to_bits());
            // Traffic: the views_from_scan arithmetic, op for op.
            let sdxl = xs[i] - mx;
            prop_assert_eq!(dx[i].to_bits(), sdxl.to_bits());
            prop_assert_eq!(lead[i].to_bits(), ((sdxl - 5.0).max(0.0)).to_bits());
            prop_assert_eq!(rear[i].to_bits(), ((-sdxl - 5.0).max(0.0)).to_bits());
        }
    }
}
