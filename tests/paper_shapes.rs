//! Miniature versions of the paper's experiments with their *shapes*
//! asserted — the regression suite behind EXPERIMENTS.md. Runs in debug CI
//! time; the full figures come from the `paper` binary in release mode.

use brace_common::stats::log_log_slope;
use brace_core::{Behavior, Simulation};
use brace_mapreduce::{ClusterConfig, ClusterSim, LoadBalancer};
use brace_models::{FishBehavior, FishParams, MitsimBaseline, TrafficBehavior, TrafficParams};
use brace_spatial::IndexKind;
use std::sync::Arc;
use std::time::Instant;

fn timed(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall time: the standard defense against scheduler noise.
fn best_of(reps: u32, mut f: impl FnMut()) -> f64 {
    (0..reps).map(|_| timed(&mut f)).fold(f64::INFINITY, f64::min)
}

/// Figure 3's shape: without indexing, tick cost grows markedly faster
/// with population than with the KD-tree. Wall-time growth exponents over
/// a 4x size range, with wide margins for scheduler noise.
#[test]
fn fig3_shape_indexing_changes_growth_order() {
    let mut secs_scan = Vec::new();
    let mut secs_kd = Vec::new();
    for segment in [5000.0, 10000.0, 20000.0] {
        let params = TrafficParams { segment, ..TrafficParams::default() };
        for (kind, out) in [(IndexKind::Scan, &mut secs_scan), (IndexKind::KdTree, &mut secs_kd)] {
            let behavior = TrafficBehavior::new(params.clone());
            let pop = behavior.population(1);
            let n = pop.len() as f64;
            let mut sim = Simulation::builder(behavior).agents(pop).seed(1).index(kind).build().unwrap();
            sim.run(2); // settle and warm caches
            let secs = best_of(3, || sim.run(3));
            out.push((n, secs));
        }
    }
    let slope_scan = log_log_slope(&secs_scan).unwrap();
    let slope_kd = log_log_slope(&secs_kd).unwrap();
    assert!(
        slope_scan > slope_kd + 0.4,
        "scan must grow clearly faster than indexed: {slope_scan:.2} vs {slope_kd:.2}"
    );
    assert!(slope_scan > 1.4, "scan growth must tend quadratic, got {slope_scan:.2}");
    assert!(slope_kd < 1.5, "indexed growth must stay near-linear, got {slope_kd:.2}");
}

/// MITSIM's role in Figure 3: the hand-coded baseline beats the generic
/// engine at equal physics (coarse wall-clock check, generous margin).
#[test]
fn fig3_shape_baseline_is_faster_than_generic_engine() {
    let params = TrafficParams { segment: 4000.0, ..TrafficParams::default() };
    let t_base = timed(|| {
        let mut sim = MitsimBaseline::new(params.clone(), 1);
        sim.run(30);
    });
    let t_brace = timed(|| {
        let behavior = TrafficBehavior::new(params.clone());
        let pop = behavior.population(1);
        let mut sim = Simulation::builder(behavior).agents(pop).seed(1).build().unwrap();
        sim.run(30);
    });
    // The paper shows "comparable but inferior"; we only assert the
    // direction with a wide noise margin.
    assert!(t_base < t_brace * 1.5, "hand-coded baseline should not lose badly: {t_base}s vs {t_brace}s");
}

/// Figure 4's shape: the index's wall-time advantage shrinks as visibility
/// grows (probes return ever larger fractions of the school).
#[test]
fn fig4_shape_index_advantage_shrinks_with_visibility() {
    let n = 1200;
    let radius = (n as f64 / std::f64::consts::PI / 0.5).sqrt();
    let ratio_at = |rho: f64| {
        let secs = |kind: IndexKind| {
            let behavior = FishBehavior::new(FishParams { rho, school_radius: radius, ..FishParams::default() });
            let pop = behavior.population(n, 2);
            let mut sim = Simulation::builder(behavior).agents(pop).seed(2).index(kind).build().unwrap();
            sim.run(1);
            best_of(3, || sim.run(3))
        };
        secs(IndexKind::Scan) / secs(IndexKind::KdTree)
    };
    let small_vis = ratio_at(2.0);
    let large_vis = ratio_at(radius);
    assert!(
        small_vis > large_vis * 1.4,
        "index advantage must shrink with visibility: {small_vis:.1}x -> {large_vis:.1}x"
    );
    assert!(small_vis > 2.0, "at small visibility the index must prune hard, got {small_vis:.1}x");
}

/// Figure 5's communication shape (timing-free): the non-local predator
/// needs a second communication round and ships effect bytes; the inverted
/// script does neither. (Throughput comparisons live in the bench harness.)
#[test]
fn fig5_shape_inversion_eliminates_second_reduce_pass() {
    use brace_common::{AgentId, DetRng, Vec2};
    use brace_core::Agent;
    let run = |inverted: bool| {
        let behavior = brace_models::scripts::predator(inverted).unwrap();
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(5);
        let agents: Vec<Agent> = (0..200)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 25.0), rng.range(0.0, 25.0)), &schema);
                a.state[0] = rng.range(0.5, 1.5);
                a
            })
            .collect();
        let cfg = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 5,
            space_x: (0.0, 25.0),
            load_balance: false,
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), agents, cfg).unwrap();
        sim.run_ticks(10).unwrap();
        let s = sim.stats();
        (s.comm_rounds_per_tick, s.net.effects.bytes)
    };
    let (rounds_nl, bytes_nl) = run(false);
    let (rounds_inv, bytes_inv) = run(true);
    assert_eq!(rounds_nl, 2);
    assert!(bytes_nl > 0);
    assert_eq!(rounds_inv, 1);
    assert_eq!(bytes_inv, 0);
}

/// Figures 7/8's mechanism: a drifting school concentrates on one border
/// partition without load balancing; the balancer keeps ownership spread.
/// Asserted on agent counts (scheduler-independent).
#[test]
fn fig7_shape_load_balancer_tracks_drifting_school() {
    let n = 400;
    let params = FishParams {
        informed_a: 1.0,
        informed_b: 0.0,
        omega: 2.0,
        jitter: 0.02,
        school_radius: 15.0,
        ..FishParams::default()
    };
    let run = |lb: bool| {
        let behavior = FishBehavior::new(params.clone());
        let pop = behavior.population(n, 7);
        let cfg = ClusterConfig {
            workers: 4,
            epoch_len: 5,
            seed: 7,
            space_x: (-15.0, 15.0),
            load_balance: lb,
            balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 1.0, epoch_len: 5 },
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).unwrap();
        sim.run_ticks(120).unwrap();
        (sim.stats().last_imbalance(), sim.stats().repartitions)
    };
    let (imb_nolb, rep_nolb) = run(false);
    let (imb_lb, rep_lb) = run(true);
    assert_eq!(rep_nolb, 0);
    assert!(rep_lb >= 1, "balancer must act");
    assert!(imb_nolb > 3.0, "without LB nearly everything sits on one of 4 workers, got {imb_nolb}");
    assert!(imb_lb < 2.0, "with LB ownership stays spread, got {imb_lb}");
}

/// Table 2's shape in miniature: the two traffic engines agree on density
/// and velocity within a few percent after settling.
#[test]
fn table2_shape_engines_agree_on_aggregates() {
    use brace_models::validation::{compare, TrafficObserver};
    let params = TrafficParams { segment: 2500.0, ..TrafficParams::default() };
    let behavior = TrafficBehavior::new(params.clone());
    let pop = behavior.population(12);
    let mut brace_sim = Simulation::builder(behavior).agents(pop).seed(12).build().unwrap();
    let mut baseline = MitsimBaseline::new(params.clone(), 12);
    brace_sim.run(60);
    baseline.run(60);
    let mut oa = TrafficObserver::new(&params, 30);
    let mut ob = TrafficObserver::new(&params, 30);
    for _ in 0..120 {
        oa.observe_agents(&brace_sim.agents());
        ob.observe_baseline(&baseline);
        brace_sim.step();
        baseline.step();
    }
    for row in compare(&oa, &ob) {
        assert!(row.velocity_rmspe < 0.15, "lane {} velocity RMSPE {}", row.lane, row.velocity_rmspe);
        assert!(row.density_rmspe < 0.35, "lane {} density RMSPE {}", row.lane, row.density_rmspe);
    }
}
