//! Fault tolerance end-to-end: coordinated checkpoints, failure injection
//! (single, scheduled, and seeded-random schedules), recovery by replay —
//! on the paper's real models. Worker-level retry/backoff, dead-letter
//! degradation and elastic membership are covered by the cluster unit
//! suite; process-restart resume by `tests/durable_resume.rs`.

use brace_mapreduce::{CheckpointStore, ClusterConfig, ClusterSim, FaultPlan};
use brace_models::{FishBehavior, FishParams, PredatorBehavior, PredatorParams};
use std::sync::Arc;

fn fish() -> FishBehavior {
    FishBehavior::new(FishParams { school_radius: 12.0, ..FishParams::default() })
}

#[test]
fn recovery_reproduces_failure_free_fish_run() {
    let pop = fish().population(150, 17);
    let base = ClusterConfig {
        workers: 3,
        epoch_len: 5,
        seed: 17,
        space_x: (-12.0, 12.0),
        load_balance: false,
        checkpoint_every: Some(2),
        ..ClusterConfig::default()
    };
    let mut clean = ClusterSim::new(Arc::new(fish()), pop.clone(), base.clone()).unwrap();
    clean.run_epochs(8).unwrap();
    let clean_world = clean.collect_agents().unwrap();

    // Fault in an epoch that did NOT write a checkpoint (epoch 4 writes at
    // (4+1)%2!=0 → no; epochs 1,3,5,7 write). Epoch 4 loses one epoch.
    let cfg = ClusterConfig { fault: Some(FaultPlan::once(4)), ..base.clone() };
    let mut faulty = ClusterSim::new(Arc::new(fish()), pop.clone(), cfg).unwrap();
    faulty.run_epochs(8).unwrap();
    assert_eq!(faulty.stats().recoveries, 1);
    assert_eq!(faulty.collect_agents().unwrap(), clean_world, "recovery must be exact");

    // Fault in an epoch that DID write a checkpoint: that snapshot is lost
    // too, recovery rolls back further and replays more.
    let cfg = ClusterConfig { fault: Some(FaultPlan::once(5)), ..base };
    let mut faulty2 = ClusterSim::new(Arc::new(fish()), pop, cfg).unwrap();
    faulty2.run_epochs(8).unwrap();
    assert_eq!(faulty2.stats().recoveries, 1);
    assert!(faulty2.stats().replayed_epochs >= 2, "lost checkpoint forces a longer replay");
    assert_eq!(faulty2.collect_agents().unwrap(), clean_world);
}

#[test]
fn recovery_with_spawning_model_is_exact() {
    // Spawn ids are assigned in global `(parent id, ordinal)` order; the
    // snapshot carries the global next-id cursor, so replayed spawns get
    // identical ids.
    let params = PredatorParams { nonlocal: true, ..Default::default() };
    let make = || PredatorBehavior::new(params.clone());
    let pop = make().population(120, 16.0, 23);
    let base = ClusterConfig {
        workers: 2,
        epoch_len: 4,
        seed: 23,
        space_x: (0.0, 16.0),
        load_balance: false,
        checkpoint_every: Some(2),
        ..ClusterConfig::default()
    };
    let mut clean = ClusterSim::new(Arc::new(make()), pop.clone(), base.clone()).unwrap();
    clean.run_epochs(6).unwrap();
    let clean_world = clean.collect_agents().unwrap();

    let cfg = ClusterConfig { fault: Some(FaultPlan::once(4)), ..base };
    let mut faulty = ClusterSim::new(Arc::new(make()), pop, cfg).unwrap();
    faulty.run_epochs(6).unwrap();
    assert_eq!(faulty.collect_agents().unwrap(), clean_world);
}

#[test]
fn fault_before_any_periodic_checkpoint_uses_initial_snapshot() {
    // The constructor takes an initial checkpoint, so even an immediate
    // fault is recoverable (replaying from tick 0).
    let pop = fish().population(80, 29);
    let cfg = ClusterConfig {
        workers: 2,
        epoch_len: 5,
        seed: 29,
        space_x: (-12.0, 12.0),
        load_balance: false,
        checkpoint_every: None, // only the initial checkpoint exists
        fault: Some(FaultPlan::once(1)),
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(Arc::new(fish()), pop.clone(), cfg).unwrap();
    sim.run_epochs(3).unwrap();
    assert_eq!(sim.stats().recoveries, 1);
    assert_eq!(sim.stats().replayed_epochs, 2, "epochs 0 and 1 replay from tick 0");

    let clean_cfg = ClusterConfig {
        workers: 2,
        epoch_len: 5,
        seed: 29,
        space_x: (-12.0, 12.0),
        load_balance: false,
        ..ClusterConfig::default()
    };
    let mut clean = ClusterSim::new(Arc::new(fish()), pop, clean_cfg).unwrap();
    clean.run_epochs(3).unwrap();
    assert_eq!(sim.collect_agents().unwrap(), clean.collect_agents().unwrap());
}

#[test]
fn checkpoints_persist_to_disk_and_reload() {
    let dir = std::env::temp_dir().join(format!("brace-ft-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pop = fish().population(60, 31);
    let cfg = ClusterConfig {
        workers: 2,
        epoch_len: 5,
        seed: 31,
        space_x: (-12.0, 12.0),
        load_balance: false,
        checkpoint_every: Some(1),
        checkpoint_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(Arc::new(fish()), pop, cfg).unwrap();
    sim.run_epochs(3).unwrap();
    drop(sim);
    let loaded = CheckpointStore::load_latest_from(&dir).unwrap().expect("checkpoint on disk");
    assert_eq!(loaded.epoch, 3);
    assert_eq!(loaded.tick, 15);
    assert_eq!(loaded.workers.len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

mod random_fault_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Seeded random fault schedules: any number of whole-cluster
        /// failures at arbitrary (seeded) epochs — before, on, or after
        /// checkpoint boundaries, including back-to-back — recover to the
        /// bits of the failure-free run, with one recovery per fault.
        #[test]
        fn seeded_random_fault_schedule_recovers_exactly(fault_seed in 0u64..1_000, n_faults in 1usize..4) {
            let pop = fish().population(90, 41);
            let base = ClusterConfig {
                workers: 3,
                epoch_len: 5,
                seed: 41,
                space_x: (-12.0, 12.0),
                load_balance: false,
                checkpoint_every: Some(2),
                ..ClusterConfig::default()
            };
            let mut clean = ClusterSim::new(Arc::new(fish()), pop.clone(), base.clone()).unwrap();
            clean.run_epochs(8).unwrap();
            let clean_world = clean.collect_agents().unwrap();

            let plan = FaultPlan::random(fault_seed, n_faults, 8);
            let scheduled = plan.at_epochs.len() as u64; // deduped, so ≤ n_faults
            prop_assert!(scheduled >= 1);
            let cfg = ClusterConfig { fault: Some(plan), ..base };
            let mut faulty = ClusterSim::new(Arc::new(fish()), pop, cfg).unwrap();
            faulty.run_epochs(8).unwrap();
            prop_assert_eq!(faulty.stats().recoveries, scheduled);
            prop_assert_eq!(faulty.collect_agents().unwrap(), clean_world);
        }
    }
}

#[test]
fn recovery_cost_is_bounded_by_checkpoint_cadence() {
    // With checkpoints every k epochs, a replay never exceeds k epochs.
    for (every, at_epoch, max_replay) in [(1u64, 5u64, 1u64), (3, 7, 3)] {
        let pop = fish().population(60, 37);
        let cfg = ClusterConfig {
            workers: 2,
            epoch_len: 5,
            seed: 37,
            space_x: (-12.0, 12.0),
            load_balance: false,
            checkpoint_every: Some(every),
            fault: Some(FaultPlan::once(at_epoch)),
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(fish()), pop, cfg).unwrap();
        sim.run_epochs(9).unwrap();
        let s = sim.stats();
        assert_eq!(s.recoveries, 1);
        assert!(s.replayed_epochs <= max_replay, "cadence {every}: replayed {} > {max_replay}", s.replayed_epochs);
    }
}
