//! Optimizer equivalence suite: for every registered BRASIL scenario the
//! optimized plan must be **bit-identical** to the unoptimized one — the
//! conformance bar of the pass pipeline (`brasil::optimize`). Three angles:
//!
//! * Proptests (named `opt_*` so CI can select them) drive each
//!   `brasil-*` scenario against its [`brasil_unoptimized`] twin through
//!   `brace_core::TickExecutor` over random populations, seeds, index
//!   kinds and tick counts, under **both** query kernels. This pins the
//!   whole pipeline — const-fold, CSE, dead-code, visibility-predicate
//!   pushdown (the shrunken probe rect must not drop a contributing
//!   candidate) and lane-kernel emission (`query_batch` ≡ interpreter).
//! * A forced-engagement test flips [`BrasilBehavior::with_batch_engagement`]
//!   on for the scripts whose cost estimate keeps them scalar, so the lane
//!   path is exercised even where `batch_profitable` says "don't bother".
//! * A backend sweep: single node vs a 2-worker cluster × optimized vs
//!   unoptimized on the registry conformance configurations — all four
//!   checksums must agree (the optimizer must be unobservable to the
//!   distributed runtime too).
//!
//! The predator twin shares effect inversion with the registered form
//! (inversion is only ~1e-9-equivalent, so both sides of the A/B carry
//! it); everything else the pipeline does is bit-exact by construction.

use brace::core::{Agent, Behavior, QueryKernel, TickExecutor};
use brace::scenario::{brasil_unoptimized, Backend, Registry, Runner, Scenario};
use brace_common::{AgentId, DetRng, Vec2};
use proptest::prelude::*;

/// Every registered BRASIL scenario (asserted against the registry so a
/// new `brasil-*` workload cannot silently dodge this suite).
const BRASIL_SCENARIOS: [&str; 3] = ["brasil-fish", "brasil-predator", "brasil-car"];

fn any_index_kind() -> impl Strategy<Value = brace::spatial::IndexKind> {
    prop::sample::select(vec![
        brace::spatial::IndexKind::Scan,
        brace::spatial::IndexKind::KdTree,
        brace::spatial::IndexKind::Grid,
    ])
}

fn any_brasil_scenario() -> impl Strategy<Value = &'static str> {
    prop::sample::select(BRASIL_SCENARIOS.to_vec())
}

/// Bitwise world equality — stricter than `Agent == Agent` (which treats
/// `0.0 == -0.0`), because the optimizer contract is bit-identity.
fn worlds_bit_identical(label: &str, a: &[Agent], b: &[Agent]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{label}: world sizes differ: {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        let same = x.id == y.id
            && x.alive == y.alive
            && x.pos.x.to_bits() == y.pos.x.to_bits()
            && x.pos.y.to_bits() == y.pos.y.to_bits()
            && x.state.len() == y.state.len()
            && x.state.iter().zip(&y.state).all(|(u, v)| u.to_bits() == v.to_bits())
            && x.effects.len() == y.effects.len()
            && x.effects.iter().zip(&y.effects).all(|(u, v)| u.to_bits() == v.to_bits());
        if !same {
            return Err(format!("{label}: agent {} diverged:\n  a: {:?}\n  b: {:?}", x.id, x, y));
        }
    }
    Ok(())
}

/// Build `name` (optimized from the registry, or its unoptimized twin),
/// run it on the single-node executor, and return the final world.
fn run_world(
    name: &str,
    optimize: bool,
    n: usize,
    seed: u64,
    kind: brace::spatial::IndexKind,
    kernel: QueryKernel,
    ticks: u64,
) -> Vec<Agent> {
    let setup = if optimize {
        Registry::builtin().get(name).expect("registered scenario").build(Some(n), seed).unwrap()
    } else {
        brasil_unoptimized(name).expect("unoptimized twin").build(Some(n), seed).unwrap()
    };
    let mut exec = TickExecutor::new(setup.behavior, setup.population, kind, seed);
    exec.set_query_kernel(kernel);
    exec.run(ticks);
    exec.agents()
}

#[test]
fn opt_suite_covers_every_registered_brasil_scenario() {
    let registry = Registry::builtin();
    let brasil: Vec<&str> = registry.names().into_iter().filter(|n| n.starts_with("brasil-")).collect();
    assert_eq!(brasil, BRASIL_SCENARIOS.to_vec(), "update BRASIL_SCENARIOS to match the registry");
    for name in BRASIL_SCENARIOS {
        assert!(brasil_unoptimized(name).is_some(), "`{name}` has no unoptimized twin");
        // Twins share the registered name so populations/configs line up.
        assert_eq!(brasil_unoptimized(name).unwrap().name(), name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole conformance bar: for every BRASIL scenario, random
    /// population size / seed / index kind / horizon, the optimized plan
    /// equals the unoptimized one bit for bit — under the batched kernel
    /// (probe-rect pushdown + lane emission live) *and* the scalar kernel
    /// (pushdown + interpreter), and the two kernels agree with each other.
    #[test]
    fn opt_pipeline_is_bit_identical_to_unoptimized(
        name in any_brasil_scenario(),
        n in 20usize..120,
        seed in 0u64..10_000,
        kind in any_index_kind(),
        ticks in 1u64..4,
    ) {
        let run = |optimize, kernel| run_world(name, optimize, n, seed, kind, kernel, ticks);
        let opt_batched = run(true, QueryKernel::Batched);
        worlds_bit_identical(
            &format!("{name} batched opt vs no-opt"),
            &opt_batched,
            &run(false, QueryKernel::Batched),
        )?;
        let opt_scalar = run(true, QueryKernel::Scalar);
        worlds_bit_identical(
            &format!("{name} scalar opt vs no-opt"),
            &opt_scalar,
            &run(false, QueryKernel::Scalar),
        )?;
        worlds_bit_identical(&format!("{name} batched vs scalar"), &opt_batched, &opt_scalar)?;
    }

    /// Forced lane engagement: the car and (inverted) predator lane
    /// programs fall under the profitability threshold, so the adaptive
    /// hint keeps them scalar by default. Force the hint on and the lane
    /// kernel must still be bit-identical to the interpreter — the
    /// cost model is a *performance* policy, never a correctness gate.
    #[test]
    fn opt_forced_batch_engagement_matches_interpreter(
        which in prop::sample::select(vec!["car", "predator"]),
        n in 10usize..80,
        seed in 0u64..10_000,
        kind in any_index_kind(),
        ticks in 1u64..4,
    ) {
        let behavior = match which {
            "car" => brace::models::scripts::car_following_opt(true).unwrap(),
            _ => brace::models::scripts::predator_opt(true, true).unwrap(),
        };
        prop_assert!(
            !behavior.batch_profitable(),
            "{which} became batch-profitable; this test wants a forced-engagement subject"
        );
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(seed);
        let agents: Vec<Agent> = (0..n)
            .map(|i| {
                let mut a = Agent::new(
                    AgentId::new(i as u64),
                    Vec2::new(rng.range(-10.0, 10.0), rng.range(-10.0, 10.0)),
                    &schema,
                );
                a.state[0] = rng.range(0.5, 1.5);
                a
            })
            .collect();
        let run = |kernel| {
            let forced = behavior.clone().with_batch_engagement(true);
            let mut exec = TickExecutor::new(forced, agents.clone(), kind, seed);
            exec.set_query_kernel(kernel);
            exec.run(ticks);
            exec.agents()
        };
        worlds_bit_identical(
            &format!("{which} forced-batch vs scalar"),
            &run(QueryKernel::Batched),
            &run(QueryKernel::Scalar),
        )?;
    }
}

/// The optimizer is unobservable to the distributed runtime: on each
/// BRASIL scenario's conformance configuration, single node vs a 2-worker
/// cluster × optimized vs unoptimized — all four checksums identical.
#[test]
fn opt_pipeline_is_unobservable_across_backends() {
    const TICKS: u64 = 12;
    const SEED: u64 = 42;
    let registry = Registry::builtin();
    for name in BRASIL_SCENARIOS {
        let optimized = registry.get(name).unwrap();
        let unoptimized = brasil_unoptimized(name).unwrap();
        let run = |scenario: &dyn Scenario, backend: Backend| {
            Runner::new(scenario)
                .seed(SEED)
                .conformance()
                .backend(backend)
                .run(TICKS)
                .unwrap_or_else(|e| panic!("scenario `{name}` failed: {e}"))
                .checksum
        };
        let base = run(optimized, Backend::single());
        for (label, sum) in [
            ("optimized cluster", run(optimized, Backend::cluster(2))),
            ("unoptimized single", run(unoptimized.as_ref(), Backend::single())),
            ("unoptimized cluster", run(unoptimized.as_ref(), Backend::cluster(2))),
        ] {
            assert_eq!(
                base, sum,
                "scenario `{name}`: {label} diverged from optimized single node \
                 ({base:#018X} vs {sum:#018X})"
            );
        }
    }
}
