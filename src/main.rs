//! `brace` — the scenario-registry CLI.
//!
//! ```text
//! brace list
//! brace run --scenario <name|all> [--backend single|cluster[:N]|both]
//!           [--ticks T] [--agents N] [--seed S] [--index kdtree|grid|scan]
//!           [--conformance] [--progress]
//! ```
//!
//! `run` drives every named scenario through the backend-erased
//! [`Runner`](brace_scenario::Runner): same behavior, same population, same
//! seed on the single-node executor or an N-worker cluster, with the
//! scenario's own post-run sanity checks enforced. CI runs
//! `run --scenario all --ticks 5 --backend both` so a scenario that only
//! works on one backend can never merge. Checksums printed here are
//! [`brace_scenario::world_checksum`] values — directly comparable with the
//! golden-tick and conformance suites.

use brace_scenario::{Backend, Observer, Progress, Registry, Runner};
use brace_spatial::IndexKind;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: brace list\n\
         \x20      brace run --scenario <name|all> [--backend single|cluster[:N]|both] [--ticks T]\n\
         \x20            [--agents N] [--seed S] [--index kdtree|grid|scan] [--conformance] [--progress]"
    );
    std::process::exit(2);
}

struct RunOpts {
    scenario: String,
    backends: Vec<Backend>,
    ticks: u64,
    agents: Option<usize>,
    seed: Option<u64>,
    index: Option<IndexKind>,
    conformance: bool,
    progress: bool,
}

fn parse_index(s: &str) -> Option<IndexKind> {
    match s {
        "kd" | "kdtree" => Some(IndexKind::KdTree),
        "grid" => Some(IndexKind::Grid),
        "scan" => Some(IndexKind::Scan),
        _ => None,
    }
}

fn parse_run_opts(args: &[String]) -> RunOpts {
    let mut opts = RunOpts {
        scenario: String::new(),
        backends: vec![Backend::single()],
        ticks: 50,
        agents: None,
        seed: None,
        index: None,
        conformance: false,
        progress: false,
    };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| die(&format!("{what} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => opts.scenario = take(args, &mut i, "--scenario"),
            "--backend" => {
                let spec = take(args, &mut i, "--backend");
                opts.backends = if spec == "both" {
                    vec![Backend::single(), Backend::cluster(2)]
                } else {
                    vec![Backend::parse(&spec).unwrap_or_else(|e| die(&e.to_string()))]
                };
            }
            "--ticks" => {
                opts.ticks = take(args, &mut i, "--ticks").parse().unwrap_or_else(|e| die(&format!("--ticks: {e}")))
            }
            "--agents" => {
                opts.agents =
                    Some(take(args, &mut i, "--agents").parse().unwrap_or_else(|e| die(&format!("--agents: {e}"))))
            }
            "--seed" => {
                opts.seed = Some(take(args, &mut i, "--seed").parse().unwrap_or_else(|e| die(&format!("--seed: {e}"))))
            }
            "--index" => {
                let s = take(args, &mut i, "--index");
                opts.index = Some(parse_index(&s).unwrap_or_else(|| die(&format!("unknown index `{s}`"))));
            }
            "--conformance" => opts.conformance = true,
            "--progress" => opts.progress = true,
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if opts.scenario.is_empty() {
        die("--scenario is required (or `brace list` to see what exists)");
    }
    opts
}

/// Progress printer attached when `--progress` is given.
struct ProgressPrinter;

impl Observer for ProgressPrinter {
    fn on_tick(&mut self, p: &Progress) {
        eprintln!("  tick {:>6} | {} agents", p.tick, p.agents);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let registry = Registry::builtin();
            println!("{} registered scenarios:", registry.len());
            for s in registry.iter() {
                println!("  {:<16} {:>6} agents  {}", s.name(), s.default_population(), s.description());
            }
        }
        Some("run") => run(&parse_run_opts(&args[1..])),
        Some("-h") | Some("--help") | None => die("expected a subcommand"),
        Some(other) => die(&format!("unknown subcommand `{other}`")),
    }
}

fn run(opts: &RunOpts) {
    let registry = Registry::builtin();
    let names: Vec<String> = if opts.scenario == "all" {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else {
        vec![opts.scenario.clone()]
    };
    let mut failures = 0usize;
    for name in &names {
        let scenario = match registry.get_or_err(name) {
            Ok(s) => s,
            Err(e) => die(&e.to_string()),
        };
        for backend in &opts.backends {
            let mut runner = Runner::new(scenario).backend(backend.clone());
            if let Some(n) = opts.agents {
                runner = runner.population(n);
            }
            if let Some(seed) = opts.seed {
                runner = runner.seed(seed);
            }
            if let Some(kind) = opts.index {
                runner = runner.index(kind);
            }
            if opts.conformance {
                runner = runner.conformance();
            }
            if opts.progress {
                runner = runner.observe(Box::new(ProgressPrinter));
            }
            match runner.run(opts.ticks) {
                Ok(report) => println!(
                    "{:<16} {:<10} {:>6} ticks  {:>7} agents  checksum {:#018X}  {:>12.0} agent-ticks/s",
                    report.scenario,
                    report.backend,
                    report.ticks,
                    report.agents,
                    report.checksum,
                    report.agents_per_sec
                ),
                Err(e) => {
                    eprintln!("{name:<16} {:<10} FAILED: {e}", backend.label());
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} run(s) failed");
        std::process::exit(1);
    }
}
