//! `brace` — the scenario-registry CLI.
//!
//! ```text
//! brace list
//! brace compile <scenario|all> [--no-opt]
//! brace run --scenario <name|all> [--backend single|cluster[:N]|both]
//!           [--ticks T] [--agents N] [--seed S] [--index kdtree|grid|scan]
//!           [--conformance] [--progress] [--trace PATH]
//! brace run --scenario <name> --run-dir DIR [--run-id ID] [--backend cluster[:N]]
//!           [--checkpoint-every E] [--keep-checkpoints K] [--epoch-sleep-ms MS] ...
//! brace run --run-dir DIR --resume <run-id> [--epoch-sleep-ms MS]
//! brace list-runs --run-dir DIR
//! brace serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//! ```
//!
//! `compile` is the optimizer inspector for the BRASIL-scripted scenarios:
//! it prints the compiled plan before and after the
//! [`brasil::Pipeline`] runs, with per-pass rewrite counts, derived probe
//! bounds, and the emitted lane kernel. `--no-opt` stops after the
//! unoptimized plan.
//!
//! `run` drives every named scenario through the backend-erased
//! [`Runner`](brace_scenario::Runner): same behavior, same population, same
//! seed on the single-node executor or an N-worker cluster, with the
//! scenario's own post-run sanity checks enforced. CI runs
//! `run --scenario all --ticks 5 --backend both` so a scenario that only
//! works on one backend can never merge. Checksums printed here are
//! [`brace_scenario::world_checksum`] values — directly comparable with the
//! golden-tick and conformance suites.
//!
//! `--trace PATH` writes an NDJSON per-tick phase trace: one line per
//! completed tick with the executor's phase timings (`index_maintain_ns`,
//! `query_ns`, `effect_merge_ns`, `update_ns`) plus work counters. Cluster
//! runs trace at epoch grain with `tick`/`agents` only (per-worker phase
//! accounting is aggregated, not per tick). Tracing observes the same
//! metrics the executor already measures — it never changes results.
//!
//! With `--run-dir`, `run` becomes a **durable job** through
//! [`DurableRunner`](brace_scenario::DurableRunner): the run lives in
//! `DIR/<run-id>/` behind a crash-safe write-ahead manifest and fsynced
//! checkpoints, and `--resume <run-id>` finishes an interrupted run in a
//! fresh process, bit-identically to never having crashed. `list-runs`
//! summarizes what a run directory holds.
//!
//! `serve` puts the registry on a socket: a [`brace_serve::Server`] with a
//! bounded simulation worker pool, explicit admission backpressure, and a
//! content-addressed result cache keyed on the canonical job line — see
//! the `brace-serve` crate docs and README for the endpoint reference.

use brace_core::metrics::TickMetrics;
use brace_scenario::runner::DEFAULT_SEED;
use brace_scenario::{Backend, DurableOpts, DurableRunner, Observer, Progress, Registry, Runner};
use brace_spatial::IndexKind;
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: brace list\n\
         \x20      brace compile <scenario|all> [--no-opt]\n\
         \x20      brace run --scenario <name|all> [--backend single|cluster[:N]|both] [--ticks T]\n\
         \x20            [--agents N] [--seed S] [--index kdtree|grid|scan] [--conformance] [--progress]\n\
         \x20            [--trace PATH]\n\
         \x20            [--run-dir DIR [--run-id ID] [--checkpoint-every E] [--keep-checkpoints K]\n\
         \x20            [--epoch-sleep-ms MS]]\n\
         \x20      brace run --run-dir DIR --resume <run-id> [--epoch-sleep-ms MS]\n\
         \x20      brace list-runs --run-dir DIR\n\
         \x20      brace serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]"
    );
    std::process::exit(2);
}

struct RunOpts {
    scenario: String,
    backends: Vec<Backend>,
    ticks: u64,
    agents: Option<usize>,
    seed: Option<u64>,
    index: Option<IndexKind>,
    conformance: bool,
    progress: bool,
    trace: Option<PathBuf>,
    run_dir: Option<PathBuf>,
    run_id: Option<String>,
    resume: Option<String>,
    checkpoint_every: u64,
    keep_checkpoints: usize,
    epoch_sleep_ms: u64,
}

fn parse_index(s: &str) -> Option<IndexKind> {
    match s {
        "kd" | "kdtree" => Some(IndexKind::KdTree),
        "grid" => Some(IndexKind::Grid),
        "scan" => Some(IndexKind::Scan),
        _ => None,
    }
}

fn parse_run_opts(args: &[String]) -> RunOpts {
    let mut opts = RunOpts {
        scenario: String::new(),
        backends: vec![Backend::single()],
        ticks: 50,
        agents: None,
        seed: None,
        index: None,
        conformance: false,
        progress: false,
        trace: None,
        run_dir: None,
        run_id: None,
        resume: None,
        checkpoint_every: 1,
        keep_checkpoints: 4,
        epoch_sleep_ms: 0,
    };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| die(&format!("{what} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => opts.scenario = take(args, &mut i, "--scenario"),
            "--backend" => {
                let spec = take(args, &mut i, "--backend");
                opts.backends = if spec == "both" {
                    vec![Backend::single(), Backend::cluster(2)]
                } else {
                    vec![Backend::parse(&spec).unwrap_or_else(|e| die(&e.to_string()))]
                };
            }
            "--ticks" => {
                opts.ticks = take(args, &mut i, "--ticks").parse().unwrap_or_else(|e| die(&format!("--ticks: {e}")))
            }
            "--agents" => {
                opts.agents =
                    Some(take(args, &mut i, "--agents").parse().unwrap_or_else(|e| die(&format!("--agents: {e}"))))
            }
            "--seed" => {
                opts.seed = Some(take(args, &mut i, "--seed").parse().unwrap_or_else(|e| die(&format!("--seed: {e}"))))
            }
            "--index" => {
                let s = take(args, &mut i, "--index");
                opts.index = Some(parse_index(&s).unwrap_or_else(|| die(&format!("unknown index `{s}`"))));
            }
            "--conformance" => opts.conformance = true,
            "--progress" => opts.progress = true,
            "--trace" => opts.trace = Some(PathBuf::from(take(args, &mut i, "--trace"))),
            "--run-dir" => opts.run_dir = Some(PathBuf::from(take(args, &mut i, "--run-dir"))),
            "--run-id" => opts.run_id = Some(take(args, &mut i, "--run-id")),
            "--resume" => opts.resume = Some(take(args, &mut i, "--resume")),
            "--checkpoint-every" => {
                opts.checkpoint_every = take(args, &mut i, "--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--checkpoint-every: {e}")))
            }
            "--keep-checkpoints" => {
                opts.keep_checkpoints = take(args, &mut i, "--keep-checkpoints")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--keep-checkpoints: {e}")))
            }
            "--epoch-sleep-ms" => {
                opts.epoch_sleep_ms = take(args, &mut i, "--epoch-sleep-ms")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--epoch-sleep-ms: {e}")))
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if opts.resume.is_some() {
        if opts.run_dir.is_none() {
            die("--resume needs --run-dir (the root the run lives under)");
        }
    } else if opts.scenario.is_empty() {
        die("--scenario is required (or `brace list` to see what exists)");
    }
    opts
}

/// Progress printer attached when `--progress` is given.
struct ProgressPrinter;

impl Observer for ProgressPrinter {
    fn on_tick(&mut self, p: &Progress) {
        eprintln!("  tick {:>6} | {} agents", p.tick, p.agents);
    }
}

/// NDJSON phase-trace sink attached when `--trace PATH` is given. All runs
/// of one invocation (`--scenario all`, `--backend both`) append to the
/// same file; each line carries its scenario and backend so the stream
/// stays self-describing. Single-node lines add the executor's per-phase
/// timings (delivered via [`Observer::on_tick_metrics`] just before the
/// matching `on_tick`); cluster lines are epoch-grain `tick`/`agents`.
struct TraceWriter {
    out: std::sync::Arc<std::sync::Mutex<std::io::BufWriter<std::fs::File>>>,
    scenario: String,
    backend: String,
    pending: Option<TickMetrics>,
}

impl Observer for TraceWriter {
    fn on_tick_metrics(&mut self, tm: &TickMetrics) {
        self.pending = Some(tm.clone());
    }

    fn on_tick(&mut self, p: &Progress) {
        use std::io::Write;
        let line = match self.pending.take() {
            Some(tm) => format!(
                "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"tick\":{},\"agents\":{},\
                 \"index_maintain_ns\":{},\"query_ns\":{},\"effect_merge_ns\":{},\"update_ns\":{},\
                 \"neighbor_visits\":{},\"nonlocal_writes\":{},\"spawned\":{},\"killed\":{}}}\n",
                self.scenario,
                self.backend,
                p.tick,
                p.agents,
                tm.index_build_ns,
                tm.query_ns,
                tm.merge_ns,
                tm.update_ns,
                tm.neighbor_visits,
                tm.nonlocal_writes,
                tm.spawned,
                tm.killed
            ),
            None => format!(
                "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"tick\":{},\"agents\":{}}}\n",
                self.scenario, self.backend, p.tick, p.agents
            ),
        };
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let registry = Registry::builtin();
            println!("{} registered scenarios:", registry.len());
            for s in registry.iter() {
                println!("  {:<16} {:>6} agents  {}", s.name(), s.default_population(), s.description());
            }
        }
        Some("compile") => compile_cmd(&args[1..]),
        Some("run") => {
            let opts = parse_run_opts(&args[1..]);
            if opts.run_dir.is_some() {
                run_durable(&opts);
            } else {
                run(&opts);
            }
        }
        Some("list-runs") => list_runs(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("-h") | Some("--help") | None => die("expected a subcommand"),
        Some(other) => die(&format!("unknown subcommand `{other}`")),
    }
}

/// `brace compile <scenario|all> [--no-opt]` — pretty-print a BRASIL
/// scenario's plan before and after the optimizer pipeline.
fn compile_cmd(args: &[String]) {
    let mut target: Option<String> = None;
    let mut no_opt = false;
    for a in args {
        match a.as_str() {
            "--no-opt" => no_opt = true,
            other if target.is_none() && !other.starts_with('-') => target = Some(other.to_string()),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let target = target.unwrap_or_else(|| die("compile needs a scenario name (or `all`)"));
    let names: Vec<&str> =
        if target == "all" { vec!["brasil-fish", "brasil-predator", "brasil-car"] } else { vec![target.as_str()] };
    for name in names {
        let Some((source, invert)) = brace_models::scripts::scenario_script(name) else {
            die(&format!("`{name}` is not a BRASIL-scripted scenario (try brasil-fish, brasil-predator, brasil-car)"))
        };
        let script = brasil::Script::compile_unoptimized(source)
            .unwrap_or_else(|e| die(&format!("`{name}` failed to compile: {e}")));
        let class = script.classes()[0].clone();
        println!("==== {name} — unoptimized plan ====");
        print!("{}", brasil::pretty::class(&class));
        if no_opt {
            continue;
        }
        let pipeline = if invert { brasil::Pipeline::with_inversion() } else { brasil::Pipeline::standard() };
        let (optimized, report) = pipeline.run(class);
        println!("---- {name} — pass pipeline ----");
        print!("{}", brasil::pretty::report(&report));
        println!("---- {name} — optimized plan ----");
        print!("{}", brasil::pretty::class(&optimized));
        println!();
    }
}

fn run(opts: &RunOpts) {
    let registry = Registry::builtin();
    let names: Vec<String> = if opts.scenario == "all" {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else {
        vec![opts.scenario.clone()]
    };
    let trace_out = opts.trace.as_ref().map(|path| {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| die(&format!("--trace: cannot create {}: {e}", path.display())));
        std::sync::Arc::new(std::sync::Mutex::new(std::io::BufWriter::new(file)))
    });
    let mut failures = 0usize;
    for name in &names {
        let scenario = match registry.get_or_err(name) {
            Ok(s) => s,
            Err(e) => die(&e.to_string()),
        };
        for backend in &opts.backends {
            let mut runner = Runner::new(scenario).backend(backend.clone());
            if let Some(n) = opts.agents {
                runner = runner.population(n);
            }
            if let Some(seed) = opts.seed {
                runner = runner.seed(seed);
            }
            if let Some(kind) = opts.index {
                runner = runner.index(kind);
            }
            if opts.conformance {
                runner = runner.conformance();
            }
            if opts.progress {
                runner = runner.observe(Box::new(ProgressPrinter));
            }
            if let Some(out) = &trace_out {
                runner = runner.observe(Box::new(TraceWriter {
                    out: std::sync::Arc::clone(out),
                    scenario: name.clone(),
                    backend: backend.label(),
                    pending: None,
                }));
            }
            match runner.run(opts.ticks) {
                Ok(report) => println!(
                    "{:<16} {:<10} {:>6} ticks  {:>7} agents  checksum {:#018X}  {:>12.0} agent-ticks/s",
                    report.scenario,
                    report.backend,
                    report.ticks,
                    report.agents,
                    report.checksum,
                    report.agents_per_sec
                ),
                Err(e) => {
                    eprintln!("{name:<16} {:<10} FAILED: {e}", backend.label());
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} run(s) failed");
        std::process::exit(1);
    }
}

/// The durable path: `--run-dir` starts a crash-safe job, `--resume`
/// finishes one.
fn run_durable(opts: &RunOpts) {
    let registry = Registry::builtin();
    let root = opts.run_dir.clone().expect("caller checked --run-dir");
    let runner = DurableRunner::new(&registry, &root);
    let result = if let Some(run_id) = &opts.resume {
        runner.resume(run_id, opts.epoch_sleep_ms)
    } else {
        let workers = match opts.backends.as_slice() {
            [Backend::Cluster(cfg)] => cfg.workers,
            _ => die("durable runs execute on the cluster backend; pass --backend cluster[:N]"),
        };
        if opts.scenario == "all" {
            die("durable runs take one scenario per run id, not `all`");
        }
        runner.start(&DurableOpts {
            scenario: opts.scenario.clone(),
            run_id: opts.run_id.clone(),
            size: opts.agents,
            conformance: opts.conformance,
            seed: opts.seed.unwrap_or(DEFAULT_SEED),
            workers,
            ticks: opts.ticks,
            checkpoint_every: opts.checkpoint_every,
            keep_checkpoints: opts.keep_checkpoints,
            epoch_sleep_ms: opts.epoch_sleep_ms,
        })
    };
    match result {
        Ok(report) => {
            let how = if report.resumed_from > 0 { format!("resumed@{}", report.resumed_from) } else { "run".into() };
            println!(
                "{:<16} {:<12} {:>6} ticks  {:>7} agents  checksum {:#018X}  run-id {}",
                report.scenario, how, report.ticks, report.agents, report.checksum, report.run_id
            );
            if report.stats.dead_letters > 0 {
                eprintln!(
                    "  degraded: {} partition(s) dead-lettered, {} agents lost",
                    report.stats.dead_letters, report.stats.agents_lost
                );
            }
        }
        Err(e) => {
            eprintln!("durable run FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// `brace serve` — the simulation-as-a-service control plane. Binds,
/// prints the resolved address, and serves until killed.
fn serve(args: &[String]) {
    let mut cfg = brace_serve::ServeConfig { addr: "127.0.0.1:8747".into(), ..Default::default() };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| die(&format!("{what} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = take(args, &mut i, "--addr"),
            "--workers" => {
                cfg.workers =
                    take(args, &mut i, "--workers").parse().unwrap_or_else(|e| die(&format!("--workers: {e}")))
            }
            "--queue" => {
                cfg.queue_cap = take(args, &mut i, "--queue").parse().unwrap_or_else(|e| die(&format!("--queue: {e}")))
            }
            "--cache" => {
                cfg.cache_cap = take(args, &mut i, "--cache").parse().unwrap_or_else(|e| die(&format!("--cache: {e}")))
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let workers = cfg.workers;
    let server = match brace_serve::Server::start(Registry::builtin(), cfg) {
        Ok(s) => s,
        Err(e) => die(&e.to_string()),
    };
    println!("brace-serve listening on http://{} ({} workers)", server.addr(), workers);
    // Serve until the process is killed; the Server's threads do the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn list_runs(args: &[String]) {
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--run-dir" => {
                i += 1;
                root = args.get(i).map(PathBuf::from);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let root = root.unwrap_or_else(|| die("list-runs needs --run-dir DIR"));
    let registry = Registry::builtin();
    let runs = DurableRunner::new(&registry, &root).list();
    if runs.is_empty() {
        println!("no runs under {}", root.display());
        return;
    }
    println!("{} run(s) under {}:", runs.len(), root.display());
    for r in runs {
        let status = match r.complete {
            Some((ticks, checksum)) => format!("complete @ {ticks} ticks, checksum {checksum:#018X}"),
            None => format!("in progress ({}/{} ticks durable)", r.completed_ticks, r.total_ticks),
        };
        let marks = match (r.dead_letters, r.truncated) {
            (0, false) => String::new(),
            (d, t) => format!(
                "  [{}{}{}]",
                if d > 0 { format!("{d} dead-lettered") } else { String::new() },
                if d > 0 && t { ", " } else { "" },
                if t { "torn tail" } else { "" }
            ),
        };
        println!("  {:<24} {:>2} workers  {}{}  ({})", r.run_id, r.workers, status, marks, r.job);
    }
}
