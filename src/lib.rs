//! # BRACE — Behavioral Simulations in MapReduce
//!
//! Umbrella crate re-exporting the whole workspace: a faithful Rust
//! reproduction of *"Behavioral Simulations in MapReduce"* (Wang et al.,
//! VLDB 2010), grown into a scenario-driven simulation system. See
//! `README.md` for a tour.
//!
//! The front door is the [`scenario`] crate: look a workload up in the
//! [`Registry`](brace_scenario::Registry), pick a
//! [`Backend`](brace_scenario::Backend), and drive it through the
//! backend-erased [`Runner`](brace_scenario::Runner):
//!
//! ```
//! use brace::prelude::*;
//!
//! let registry = Registry::builtin();
//! let scenario = registry.get("fish").unwrap();
//! let report = Runner::new(scenario).population(200).run(10).unwrap();
//! let cluster = Runner::new(scenario)
//!     .population(200)
//!     .backend(Backend::cluster(2))
//!     .run(10)
//!     .unwrap();
//! assert_eq!(report.checksum, cluster.checksum); // same bits at any scale
//! ```

/// Common geometry, ids, RNG and statistics.
pub use brace_common as common;
/// The state-effect pattern and single-node engine.
pub use brace_core as core;
/// The distributed (simulated-cluster) MapReduce runtime.
pub use brace_mapreduce as mapreduce;
/// Reference simulation models (traffic, fish, predator, epidemic, …).
pub use brace_models as models;
/// The scenario registry and the backend-erased driver.
pub use brace_scenario as scenario;
/// Spatial indexes, partitioning and joins.
pub use brace_spatial as spatial;
/// The BRASIL agent language.
pub use brasil;

/// The most common imports for building and running a simulation.
pub mod prelude {
    pub use brace_common::{AgentId, DetRng, Rect, Vec2};
    pub use brace_scenario::{Backend, Observer, Progress, Registry, Runner, Scenario, SimHandle};
    pub use brace_spatial::{IndexKind, Partitioner};
}
