//! # BRACE — Behavioral Simulations in MapReduce
//!
//! Umbrella crate re-exporting the whole workspace: a faithful Rust
//! reproduction of *"Behavioral Simulations in MapReduce"* (Wang et al.,
//! VLDB 2010). See `README.md` for a tour and `DESIGN.md` for the system
//! inventory.
//!
//! ```
//! // The three-line quickstart: simulate a fish school on 4 workers.
//! use brace::prelude::*;
//! ```

/// Common geometry, ids, RNG and statistics.
pub use brace_common as common;
/// The state-effect pattern and single-node engine.
pub use brace_core as core;
/// The distributed (simulated-cluster) MapReduce runtime.
pub use brace_mapreduce as mapreduce;
/// Reference simulation models (traffic, fish, predator).
pub use brace_models as models;
/// Spatial indexes, partitioning and joins.
pub use brace_spatial as spatial;
/// The BRASIL agent language.
pub use brasil;

/// The most common imports for building and running a simulation.
pub mod prelude {
    pub use brace_common::{AgentId, DetRng, Rect, Vec2};
    pub use brace_spatial::{IndexKind, Partitioner};
}
