//! Minimal stand-in for the `crossbeam` crate: unbounded MPSC channels with
//! the `crossbeam::channel` API surface this workspace uses, backed by
//! `std::sync::mpsc`. Vendored because the build environment is offline;
//! see `vendor/README.md`.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable (MPSC).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a closed channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and closed channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42).unwrap());
            assert_eq!(rx.recv().unwrap(), 42);
            drop(tx);
        }

        #[test]
        fn recv_errors_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
