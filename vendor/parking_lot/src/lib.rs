//! Minimal stand-in for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` API, backed by `std::sync::Mutex`. Vendored because the build
//! environment is offline; see `vendor/README.md`.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Mutex whose `lock()` never returns a poison error (a panicked holder
/// simply hands the data over, matching parking_lot semantics closely
/// enough for this workspace's counters).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
