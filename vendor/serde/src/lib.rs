//! Minimal stand-in for `serde`: the `Serialize`/`Deserialize` names resolve
//! (as no-op derive macros plus empty marker traits) so the workspace's
//! annotated types compile, while all actual serialization in this repo goes
//! through the hand-rolled codec in `brace-mapreduce`. Vendored because the
//! build environment is offline; see `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the no-op derive does not implement it, and nothing in the
/// workspace requires the bound. Present so `T: serde::Serialize` bounds in
/// downstream code at least name-resolve.
pub trait SerializeMarker {}

/// See [`SerializeMarker`].
pub trait DeserializeMarker<'de> {}
