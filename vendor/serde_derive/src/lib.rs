//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace's wire formats are hand-rolled (see `brace-mapreduce`'s
//! `codec` module); the serde derives on value types exist so downstream
//! users *could* plug in real serde. In this offline build the derives
//! expand to nothing — the annotation compiles, no impl is generated, and
//! nothing in the workspace calls serde serialization.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
