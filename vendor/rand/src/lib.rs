//! Minimal stand-in for the `rand` crate: just the [`RngCore`]/[`Rng`]
//! traits and [`Error`] type that `brace_common::DetRng` implements for
//! ecosystem compatibility. No generator state lives here — determinism in
//! this workspace comes entirely from `DetRng`. Vendored because the build
//! environment is offline; see `vendor/README.md`.

/// Error type for fallible RNG operations (never produced by `DetRng`).
#[derive(Debug, Clone)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Convenience extension trait, mirroring the subset of `rand::Rng` that
/// simulation models reach for.
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}
