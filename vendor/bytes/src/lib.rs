//! Minimal, API-compatible stand-in for the parts of the `bytes` crate this
//! workspace uses. Vendored because the build environment has no network
//! access to crates.io; see `vendor/README.md`.
//!
//! Provided: [`Bytes`] (cheaply cloneable immutable buffer), [`BytesMut`]
//! (growable builder), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the codec layer needs.

use std::sync::Arc;

/// Read cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consume `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            off += n;
        }
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable, cheaply cloneable byte buffer (shared storage + range).
/// Reading through [`Buf`] advances the range without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-range (indices relative to this buffer's view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end, "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + range.start, end: self.start + range.end }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Drop the contents, keeping the allocation (buffer reuse across
    /// encode passes).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f64_le(-1.5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_and_zero_copy() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
    }

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.len(), 1024);
    }
}
