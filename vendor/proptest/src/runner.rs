//! Deterministic input generation for the mini proptest harness.

/// SplitMix64-based generator, seeded from the test's name so each property
/// sees a stable, independent input stream on every run (reproducibility is
/// worth more than fresh entropy in an offline CI-style harness).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes, then mixed).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: splitmix64(h) }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}
