//! Mini property-testing harness exposing the subset of the `proptest` API
//! this workspace uses: the `proptest!` macro, range / `any` / `select` /
//! `vec` / tuple strategies, and `prop_assert!`/`prop_assert_eq!`. Vendored
//! because the build environment is offline; see `vendor/README.md`.
//!
//! Differences from real proptest, deliberate for a deterministic offline
//! harness: inputs are generated from a fixed per-test seed (derived from
//! the test's name) so failures reproduce exactly across runs, and there is
//! no shrinking — the failing case prints its number, and the whole input
//! set can be regenerated from it.

pub mod config;
pub mod runner;
pub mod strategy;

/// `prop::...` paths (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// `proptest::collection::vec` path compatibility.
pub mod collection {
    pub use crate::strategy::vec;
}

/// `proptest::sample::select` path compatibility.
pub mod sample {
    pub use crate::strategy::select;
}

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{any, select, vec, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body; failure aborts the current case with a
/// formatted message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} ({})", ::core::stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}` ({})", l, r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!("assertion failed: `{:?}` == `{:?}`", l, r));
        }
    }};
}

/// The `proptest!` block macro: declares `#[test]` functions whose
/// arguments are drawn from strategies for a configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let __cases = __cfg.resolved_cases();
                let mut __rng = $crate::runner::TestRng::for_test(::core::stringify!($name));
                for __case in 0..__cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__msg) = __result {
                        ::core::panic!(
                            "property `{}` failed on case {}/{}: {}",
                            ::core::stringify!($name), __case + 1, __cases, __msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.5, n in 3usize..7, s in any::<u64>()) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            let _ = s;
        }

        #[test]
        fn vec_lengths_respect_range(v in vec(0.0f64..1.0, 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_select(t in (0u64..10, -1.0f64..1.0), pick in select(vec![1, 2, 3])) {
            prop_assert!(t.0 < 10);
            prop_assert!((-1.0..1.0).contains(&t.1));
            prop_assert!([1, 2, 3].contains(&pick));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = crate::runner::TestRng::for_test("x");
        let mut b = crate::runner::TestRng::for_test("x");
        let mut c = crate::runner::TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
