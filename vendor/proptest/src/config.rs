//! Configuration for the mini proptest harness.

/// How many cases each property runs. Default matches the workspace's
/// typical explicit setting; override with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
