//! Configuration for the mini proptest harness.

/// How many cases each property runs. Default matches the workspace's
/// typical explicit setting; override with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count for this run: the configured count, overridden by the
    /// `PROPTEST_CASES` environment variable when set. Unlike real
    /// proptest (where an explicit `with_cases` beats the environment),
    /// the variable wins here — CI raises the case count of selected
    /// suites (the kernel conformance properties) without editing their
    /// in-tree configuration.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
