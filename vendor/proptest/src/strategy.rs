//! Strategies: how property inputs are drawn from a [`TestRng`].

use crate::runner::TestRng;
use std::ops::Range;

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let span = self.end.saturating_sub(self.start).max(1);
        self.start + rng.below(span)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for f64 {
    /// Finite doubles over a wide magnitude range (no NaN/inf: the codecs
    /// and joins under test define equality on finite values).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = 10f64.powf(rng.unit() * 12.0 - 6.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag * rng.unit()
    }
}

/// Strategy for `any::<T>()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniformly select one of the given values (`prop::sample::select`).
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "select() over an empty set");
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select(options)
}

/// `Vec` strategy with a length range (`prop::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}
