//! Minimal benchmark harness exposing the subset of the `criterion` API the
//! bench targets use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, the group/main macros). Vendored
//! because the build environment is offline; see `vendor/README.md`.
//!
//! Measurement model: per benchmark, run a short warm-up, then time
//! `sample_size` batches within roughly `measurement_time` and report the
//! best and mean batch time. No statistics beyond that — the workspace's
//! real regression tracking lives in the `tick-throughput` JSON baseline,
//! not here.

use std::time::{Duration, Instant};

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// `(best, mean)` batch times filled in by [`Bencher::iter`].
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Run `f` repeatedly: warm up, then time samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        let mut iters_per_sample = 0u64;
        while Instant::now() < warm_end || iters_per_sample == 0 {
            black_box(f());
            iters_per_sample += 1;
        }
        // Aim each sample at measurement_time / samples, in whole iterations.
        let per_iter = self.warm_up.as_secs_f64() / iters_per_sample as f64;
        let target = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed() / batch as u32;
            best = best.min(dt);
            total += dt;
        }
        self.result = Some((best, total / self.samples as u32));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b =
            Bencher { warm_up: self.warm_up, measurement: self.measurement, samples: self.samples, result: None };
        f(&mut b);
        match b.result {
            Some((best, mean)) => {
                println!("{}/{}: best {:>12?}  mean {:>12?}  ({} samples)", self.name, label, best, mean, self.samples)
            }
            None => println!("{}/{}: no measurement (Bencher::iter never called)", self.name, label),
        }
    }

    pub fn bench_function(&mut self, label: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = label.to_string();
        self.run(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.label.clone(), &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            samples: 10,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, label: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = label.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Prevent the optimizer from eliding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
